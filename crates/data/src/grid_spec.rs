//! A reusable grid specification: the fitted cut points of a discretization,
//! detached from the data that produced them.
//!
//! [`crate::discretize::Discretized`] assigns cells to the rows it was built
//! from; a [`GridSpec`] extracted from it can assign cells to *new* records
//! drawn from the same distribution — the train/apply split a production
//! deployment needs (fit the grid and mine the projections offline, score
//! incoming records online).
//!
//! Out-of-sample assignment is by value against the fitted boundaries, so it
//! approximates the rank-based in-sample assignment; ties that the in-sample
//! equi-depth split broke by row order land in the lower of the candidate
//! ranges.

use crate::dataset::{DataError, Dataset};
use crate::discretize::{Discretized, MISSING_CELL};

/// Fitted per-dimension cell boundaries.
///
/// For dimension `j`, `uppers[j]` holds φ−1 ascending upper boundaries; a
/// value `v` lands in the first range whose upper boundary is ≥ `v` (the
/// last range catches everything above).
///
/// ```
/// use hdoutlier_data::{Dataset, DiscretizeStrategy, Discretized, GridSpec};
/// let ds = Dataset::from_rows((0..100).map(|i| vec![i as f64]).collect()).unwrap();
/// let disc = Discretized::new(&ds, 4, DiscretizeStrategy::EquiDepth).unwrap();
/// let spec = GridSpec::from_discretized(&disc);
/// // New values fall into the fitted quartiles.
/// assert_eq!(spec.cell_of(0, -5.0), 0);
/// assert_eq!(spec.cell_of(0, 50.0), 2);
/// assert_eq!(spec.cell_of(0, 1e9), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    uppers: Vec<Vec<f64>>,
    phi: u32,
    names: Vec<String>,
}

impl GridSpec {
    /// Extracts the fitted boundaries from a discretized dataset.
    ///
    /// Boundary `r` of a dimension is the midpoint between range `r`'s
    /// maximum and range `r+1`'s minimum observed value; empty ranges borrow
    /// their neighbors' edge so the boundaries stay ascending.
    pub fn from_discretized(disc: &Discretized) -> Self {
        let phi = disc.phi();
        let uppers = (0..disc.n_dims())
            .map(|dim| {
                let mut bounds = Vec::with_capacity(phi as usize - 1);
                let mut last = f64::NEG_INFINITY;
                for r in 0..(phi - 1) as u16 {
                    let this = disc.grid_range(dim, r);
                    let next = disc.grid_range(dim, r + 1);
                    let hi = if this.count > 0 { this.hi } else { last };
                    let lo = if next.count > 0 { next.lo } else { hi };
                    let mut boundary = (hi + lo) / 2.0;
                    if !boundary.is_finite() {
                        boundary = last;
                    }
                    boundary = boundary.max(last);
                    bounds.push(boundary);
                    last = boundary;
                }
                bounds
            })
            .collect();
        Self {
            uppers,
            phi,
            names: disc.names().to_vec(),
        }
    }

    /// Reassembles a spec from its parts (e.g. loaded from disk).
    ///
    /// # Errors
    /// [`DataError::NameCountMismatch`] if `names` and `uppers` disagree on
    /// dimensionality; [`DataError::Parse`] if any dimension's boundary list
    /// is not `phi − 1` ascending finite values.
    pub fn from_parts(
        uppers: Vec<Vec<f64>>,
        phi: u32,
        names: Vec<String>,
    ) -> Result<Self, DataError> {
        if names.len() != uppers.len() {
            return Err(DataError::NameCountMismatch {
                n_dims: uppers.len(),
                n_names: names.len(),
            });
        }
        if phi == 0 {
            return Err(DataError::Parse("phi must be positive".into()));
        }
        for (dim, bounds) in uppers.iter().enumerate() {
            if bounds.len() != (phi - 1) as usize {
                return Err(DataError::Parse(format!(
                    "dimension {dim}: expected {} boundaries, got {}",
                    phi - 1,
                    bounds.len()
                )));
            }
            if bounds.iter().any(|b| b.is_nan()) || bounds.windows(2).any(|w| w[0] > w[1]) {
                return Err(DataError::Parse(format!(
                    "dimension {dim}: boundaries must be ascending and not NaN"
                )));
            }
        }
        Ok(Self { uppers, phi, names })
    }

    /// The fitted upper boundaries of dimension `dim` (`phi − 1` ascending
    /// values).
    pub fn boundaries(&self, dim: usize) -> &[f64] {
        &self.uppers[dim]
    }

    /// Number of dimensions the spec covers.
    pub fn n_dims(&self) -> usize {
        self.uppers.len()
    }

    /// Ranges per dimension.
    pub fn phi(&self) -> u32 {
        self.phi
    }

    /// Column names carried from the fitting data.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Cell of a single value on dimension `dim` (NaN → [`MISSING_CELL`]).
    pub fn cell_of(&self, dim: usize, value: f64) -> u16 {
        if value.is_nan() {
            return MISSING_CELL;
        }
        self.uppers[dim].partition_point(|&b| b < value) as u16
    }

    /// Cells of one new record.
    ///
    /// # Errors
    /// [`DataError::ShapeMismatch`] if the record width differs from the
    /// fitted dimensionality.
    pub fn assign_row(&self, row: &[f64]) -> Result<Vec<u16>, DataError> {
        if row.len() != self.n_dims() {
            return Err(DataError::ShapeMismatch {
                expected: self.n_dims(),
                actual: row.len(),
            });
        }
        Ok(row
            .iter()
            .enumerate()
            .map(|(dim, &v)| self.cell_of(dim, v))
            .collect())
    }

    /// Cells for a whole new dataset, row-major.
    pub fn assign(&self, dataset: &Dataset) -> Result<Vec<Vec<u16>>, DataError> {
        dataset.rows().map(|row| self.assign_row(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::DiscretizeStrategy;
    use crate::generators::uniform;

    fn fitted() -> (Dataset, Discretized, GridSpec) {
        let ds = uniform(1000, 3, 81);
        let disc = Discretized::new(&ds, 5, DiscretizeStrategy::EquiDepth).unwrap();
        let spec = GridSpec::from_discretized(&disc);
        (ds, disc, spec)
    }

    #[test]
    fn boundaries_are_ascending() {
        let (_, _, spec) = fitted();
        for dim in 0..3 {
            let b = &spec.uppers[dim];
            assert_eq!(b.len(), 4);
            for w in b.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn in_sample_rows_mostly_reproduce_their_cells() {
        // Value-based reassignment agrees with the rank-based original on
        // all but boundary ties (continuous uniform data: no ties at all).
        let (ds, disc, spec) = fitted();
        for row in 0..ds.n_rows() {
            let cells = spec.assign_row(ds.row(row)).unwrap();
            for (dim, &cell) in cells.iter().enumerate() {
                assert_eq!(cell, disc.cell(row, dim), "row {row} dim {dim}");
            }
        }
    }

    #[test]
    fn out_of_sample_extremes_land_in_edge_ranges() {
        let (_, _, spec) = fitted();
        assert_eq!(spec.cell_of(0, -1e9), 0);
        assert_eq!(spec.cell_of(0, 1e9), 4);
        assert_eq!(spec.cell_of(0, f64::NAN), MISSING_CELL);
    }

    #[test]
    fn shape_validation() {
        let (_, _, spec) = fitted();
        assert!(spec.assign_row(&[0.5, 0.5]).is_err());
        assert!(spec.assign_row(&[0.5, 0.5, 0.5]).is_ok());
        let other = uniform(10, 3, 5);
        let assigned = spec.assign(&other).unwrap();
        assert_eq!(assigned.len(), 10);
        assert!(assigned.iter().all(|r| r.len() == 3));
    }

    #[test]
    fn constant_range_handling() {
        // Heavy ties: value-based boundaries collapse but stay ascending
        // and assignment stays within range.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![if i < 90 { 5.0 } else { i as f64 }])
            .collect();
        let ds = Dataset::from_rows(rows).unwrap();
        let disc = Discretized::new(&ds, 4, DiscretizeStrategy::EquiDepth).unwrap();
        let spec = GridSpec::from_discretized(&disc);
        for v in [-1.0, 5.0, 50.0, 200.0] {
            let c = spec.cell_of(0, v);
            assert!(c < 4, "value {v} -> cell {c}");
        }
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let (_, _, spec) = fitted();
        let rebuilt = GridSpec::from_parts(
            (0..3).map(|d| spec.boundaries(d).to_vec()).collect(),
            spec.phi(),
            spec.names().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, spec);
        // Validation failures.
        assert!(GridSpec::from_parts(vec![vec![1.0]], 5, vec!["a".into(), "b".into()]).is_err());
        assert!(GridSpec::from_parts(vec![vec![1.0]], 0, vec!["a".into()]).is_err());
        assert!(GridSpec::from_parts(vec![vec![1.0]], 5, vec!["a".into()]).is_err()); // wrong len
        assert!(GridSpec::from_parts(vec![vec![2.0, 1.0]], 3, vec!["a".into()]).is_err()); // order
        assert!(GridSpec::from_parts(vec![vec![f64::NAN, 1.0]], 3, vec!["a".into()]).is_err());
    }

    #[test]
    fn names_carry_over() {
        let mut ds = uniform(50, 2, 3);
        ds.set_names(vec!["p", "q"]).unwrap();
        let disc = Discretized::new(&ds, 3, DiscretizeStrategy::EquiDepth).unwrap();
        let spec = GridSpec::from_discretized(&disc);
        assert_eq!(spec.names(), &["p".to_string(), "q".to_string()]);
    }
}
