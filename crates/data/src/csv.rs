//! Dependency-free CSV reading and writing.
//!
//! Supports the subset of RFC 4180 the UCI-style pipelines need: quoted
//! fields with embedded commas/quotes/newlines, a header row, configurable
//! missing-value markers (`?` is the UCI convention), and extraction of a
//! label column. Non-numeric fields can be auto-encoded as categorical codes
//! through [`crate::clean::encode_categoricals`]; the reader itself maps
//! unparsable fields to missing so callers choose their policy.

use crate::dataset::{DataError, Dataset};
use std::path::Path;

/// Options controlling CSV interpretation.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Whether the first record is a header of column names.
    pub has_header: bool,
    /// Field separator.
    pub delimiter: char,
    /// Strings treated as missing values (compared after trimming).
    pub missing_markers: Vec<String>,
    /// Name (if `has_header`) or index of a column to strip into class
    /// labels. Label values are dense-encoded in order of first appearance.
    pub label_column: Option<ColumnRef>,
}

/// Reference to a column by header name or position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnRef {
    /// By header name (requires `has_header`).
    Name(String),
    /// By zero-based position.
    Index(usize),
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            has_header: true,
            delimiter: ',',
            missing_markers: vec!["?".into(), "".into(), "NA".into(), "NaN".into()],
            label_column: None,
        }
    }
}

/// Parses CSV text into a [`Dataset`].
///
/// Fields matching a missing marker become NaN. Fields that fail to parse as
/// numbers also become NaN — run [`crate::clean::encode_categoricals`] on the
/// raw records (via [`parse_records`]) if categorical columns should be
/// dense-coded instead of dropped.
pub fn read_str(text: &str, options: &CsvOptions) -> Result<Dataset, DataError> {
    let records = parse_records(text, options.delimiter)?;
    records_to_dataset(records, options)
}

/// Reads a CSV file into a [`Dataset`].
pub fn read_path<P: AsRef<Path>>(path: P, options: &CsvOptions) -> Result<Dataset, DataError> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| DataError::Parse(format!("{}: {e}", path.as_ref().display())))?;
    read_str(&text, options)
}

/// Writes a dataset as CSV (header + rows; missing values as `NaN`, which
/// the default [`CsvOptions::missing_markers`] read back as missing — an
/// empty field would be ambiguous with a blank line for 1-column data).
pub fn write_string(dataset: &Dataset) -> String {
    let mut out = String::new();
    out.push_str(&join_escaped(dataset.names().iter().map(String::as_str)));
    out.push('\n');
    for row in dataset.rows() {
        let fields: Vec<String> = row
            .iter()
            .map(|v| {
                if v.is_nan() {
                    "NaN".to_string()
                } else {
                    format_number(*v)
                }
            })
            .collect();
        out.push_str(&join_escaped(fields.iter().map(String::as_str)));
        out.push('\n');
    }
    out
}

/// Writes a dataset to a file as CSV.
pub fn write_path<P: AsRef<Path>>(dataset: &Dataset, path: P) -> Result<(), DataError> {
    std::fs::write(path.as_ref(), write_string(dataset))
        .map_err(|e| DataError::Parse(format!("{}: {e}", path.as_ref().display())))
}

fn format_number(v: f64) -> String {
    // Shortest representation that round-trips.
    let mut s = format!("{v}");
    if s.ends_with(".0") {
        s.truncate(s.len() - 2);
    }
    s
}

fn join_escaped<'a, I: Iterator<Item = &'a str>>(fields: I) -> String {
    let mut out = String::new();
    for (i, f) in fields.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if f.contains([',', '"', '\n', '\r']) {
            out.push('"');
            out.push_str(&f.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out
}

/// Splits CSV text into records of string fields, honoring quotes.
///
/// Exposed so cleaning passes (categorical encoding) can run before numeric
/// conversion.
pub fn parse_records(text: &str, delimiter: char) -> Result<Vec<Vec<String>>, DataError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    // A record containing a quoted field is never "blank", even if the
    // field is empty: `""` is one record with one empty field, `\n` is a
    // blank line to skip.
    let mut record_quoted = false;
    let mut saw_any = false;

    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else if c == '"' {
            if field.is_empty() {
                in_quotes = true;
                record_quoted = true;
            } else {
                return Err(DataError::Parse(format!(
                    "unexpected quote inside unquoted field at record {}",
                    records.len() + 1
                )));
            }
        } else if c == delimiter {
            record.push(std::mem::take(&mut field));
        } else if c == '\n' || c == '\r' {
            if c == '\r' && chars.peek() == Some(&'\n') {
                chars.next();
            }
            record.push(std::mem::take(&mut field));
            let blank = record.len() == 1 && record[0].is_empty() && !record_quoted;
            if blank {
                record.clear();
            } else {
                records.push(std::mem::take(&mut record));
            }
            record_quoted = false;
        } else {
            field.push(c);
        }
    }
    if in_quotes {
        return Err(DataError::Parse("unterminated quoted field".into()));
    }
    if saw_any && (!field.is_empty() || !record.is_empty() || record_quoted) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

fn records_to_dataset(
    mut records: Vec<Vec<String>>,
    options: &CsvOptions,
) -> Result<Dataset, DataError> {
    if records.is_empty() {
        return Err(DataError::Empty);
    }
    let header: Option<Vec<String>> = if options.has_header {
        Some(records.remove(0))
    } else {
        None
    };
    if records.is_empty() {
        return Err(DataError::Empty);
    }
    let width = records[0].len();
    for (i, r) in records.iter().enumerate() {
        if r.len() != width {
            return Err(DataError::Parse(format!(
                "record {} has {} fields, expected {width}",
                i + 1,
                r.len()
            )));
        }
    }

    let label_idx: Option<usize> = match &options.label_column {
        None => None,
        Some(ColumnRef::Index(i)) => {
            if *i >= width {
                return Err(DataError::ColumnIndexOutOfBounds {
                    index: *i,
                    n_dims: width,
                });
            }
            Some(*i)
        }
        Some(ColumnRef::Name(name)) => {
            let header = header
                .as_ref()
                .ok_or_else(|| DataError::Parse("label by name requires a header".into()))?;
            Some(
                header
                    .iter()
                    .position(|h| h.trim() == name)
                    .ok_or_else(|| DataError::NoSuchColumn(name.clone()))?,
            )
        }
    };

    let is_missing = |s: &str| -> bool { options.missing_markers.iter().any(|m| m == s.trim()) };

    let mut labels: Vec<u32> = Vec::new();
    let mut label_codes: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(records.len());
    for record in &records {
        let mut row = Vec::with_capacity(width - usize::from(label_idx.is_some()));
        for (j, fieldstr) in record.iter().enumerate() {
            if Some(j) == label_idx {
                let key = fieldstr.trim();
                let code = match label_codes.iter().position(|c| c == key) {
                    Some(c) => c as u32,
                    None => {
                        label_codes.push(key.to_string());
                        (label_codes.len() - 1) as u32
                    }
                };
                labels.push(code);
                continue;
            }
            let t = fieldstr.trim();
            if is_missing(t) {
                row.push(f64::NAN);
            } else {
                row.push(t.parse::<f64>().unwrap_or(f64::NAN));
            }
        }
        rows.push(row);
    }

    let mut ds = Dataset::from_rows(rows)?;
    if let Some(header) = header {
        let names: Vec<String> = header
            .iter()
            .enumerate()
            .filter(|(j, _)| Some(*j) != label_idx)
            .map(|(_, h)| h.trim().to_string())
            .collect();
        ds.set_names(names)?;
    }
    if label_idx.is_some() {
        ds.set_labels(labels)?;
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_round_trip() {
        let text = "a,b\n1,2\n3,4.5\n";
        let ds = read_str(text, &CsvOptions::default()).unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.n_dims(), 2);
        assert_eq!(ds.names(), &["a".to_string(), "b".to_string()]);
        assert_eq!(ds.value(1, 1), 4.5);
        let back = write_string(&ds);
        let ds2 = read_str(&back, &CsvOptions::default()).unwrap();
        assert_eq!(ds, ds2);
    }

    #[test]
    fn missing_markers_become_nan() {
        let text = "a,b\n?,2\n3,\n5,NA\n";
        let ds = read_str(text, &CsvOptions::default()).unwrap();
        assert!(ds.is_missing(0, 0));
        assert!(ds.is_missing(1, 1));
        assert!(ds.is_missing(2, 1));
        assert_eq!(ds.missing_count(), 3);
    }

    #[test]
    fn unparsable_fields_become_nan() {
        let text = "a\nhello\n3\n";
        let ds = read_str(text, &CsvOptions::default()).unwrap();
        assert!(ds.is_missing(0, 0));
        assert_eq!(ds.value(1, 0), 3.0);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let recs = parse_records("\"a,b\",\"say \"\"hi\"\"\"\n1,2\n", ',').unwrap();
        assert_eq!(recs[0], vec!["a,b".to_string(), "say \"hi\"".to_string()]);
        assert_eq!(recs[1], vec!["1".to_string(), "2".to_string()]);
    }

    #[test]
    fn quoted_field_with_newline() {
        let recs = parse_records("\"line1\nline2\",x\n", ',').unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0][0], "line1\nline2");
    }

    #[test]
    fn crlf_and_missing_trailing_newline() {
        let recs = parse_records("a,b\r\n1,2", ',').unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], vec!["1".to_string(), "2".to_string()]);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let recs = parse_records("a\n\n1\n\n", ',').unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn lone_quoted_empty_field_is_a_record_not_a_blank_line() {
        // Regression (found by fuzzing): `""` is one record with one empty
        // field; a bare newline is a blank line to skip.
        let recs = parse_records("\"\"", ',').unwrap();
        assert_eq!(recs, vec![vec![String::new()]]);
        let recs = parse_records("\"\"\nx\n", ',').unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], vec![String::new()]);
    }

    #[test]
    fn label_column_by_name() {
        let text = "f1,class,f2\n1,yes,10\n2,no,20\n3,yes,30\n";
        let options = CsvOptions {
            label_column: Some(ColumnRef::Name("class".into())),
            ..CsvOptions::default()
        };
        let ds = read_str(text, &options).unwrap();
        assert_eq!(ds.n_dims(), 2);
        assert_eq!(ds.names(), &["f1".to_string(), "f2".to_string()]);
        assert_eq!(ds.labels(), Some(&[0, 1, 0][..]));
        assert_eq!(ds.value(2, 1), 30.0);
    }

    #[test]
    fn label_column_by_index_without_header() {
        let text = "1,A\n2,B\n3,A\n";
        let options = CsvOptions {
            has_header: false,
            label_column: Some(ColumnRef::Index(1)),
            ..CsvOptions::default()
        };
        let ds = read_str(text, &options).unwrap();
        assert_eq!(ds.n_dims(), 1);
        assert_eq!(ds.labels(), Some(&[0, 1, 0][..]));
    }

    #[test]
    fn error_cases() {
        assert!(read_str("", &CsvOptions::default()).is_err());
        assert!(read_str("a,b\n", &CsvOptions::default()).is_err()); // header only
        assert!(read_str("a,b\n1\n", &CsvOptions::default()).is_err()); // ragged
        assert!(parse_records("\"unterminated", ',').is_err());
        assert!(parse_records("ab\"cd\n", ',').is_err()); // quote mid-field
        let options = CsvOptions {
            label_column: Some(ColumnRef::Name("nope".into())),
            ..CsvOptions::default()
        };
        assert!(read_str("a,b\n1,2\n", &options).is_err());
        let options = CsvOptions {
            label_column: Some(ColumnRef::Index(9)),
            ..CsvOptions::default()
        };
        assert!(read_str("a,b\n1,2\n", &options).is_err());
        let options = CsvOptions {
            has_header: false,
            label_column: Some(ColumnRef::Name("x".into())),
            ..CsvOptions::default()
        };
        assert!(read_str("1,2\n", &options).is_err());
    }

    #[test]
    fn custom_delimiter() {
        let options = CsvOptions {
            delimiter: ';',
            ..CsvOptions::default()
        };
        let ds = read_str("a;b\n1;2\n", &options).unwrap();
        assert_eq!(ds.value(0, 1), 2.0);
    }

    #[test]
    fn writer_escapes_special_names() {
        let mut ds = Dataset::from_rows(vec![vec![1.0, f64::NAN]]).unwrap();
        ds.set_names(vec!["plain", "with,comma"]).unwrap();
        let s = write_string(&ds);
        assert!(s.starts_with("plain,\"with,comma\"\n"));
        assert!(s.contains("1,NaN\n")); // NaN written explicitly
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("hdoutlier-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let ds = Dataset::from_rows(vec![vec![1.5, 2.5], vec![3.0, f64::NAN]]).unwrap();
        write_path(&ds, &path).unwrap();
        let back = read_path(&path, &CsvOptions::default()).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.value(0, 1), 2.5);
        assert!(back.is_missing(1, 1));
        assert!(read_path(dir.join("nonexistent.csv"), &CsvOptions::default()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
