//! Seeded dataset shuffling and splitting — evaluation plumbing for
//! experiments that train on one portion of the data and measure on another
//! (e.g. the pre-screening study), kept deterministic like everything else
//! in the workspace.

use crate::dataset::{DataError, Dataset};
use hdoutlier_rng::seq::SliceRandom;
use hdoutlier_rng::SeedableRng;

/// A seeded random permutation of `0..n`.
pub fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut hdoutlier_rng::rngs::StdRng::seed_from_u64(seed));
    order
}

/// Returns the dataset's rows in a seeded random order (labels follow).
pub fn shuffle(dataset: &Dataset, seed: u64) -> Dataset {
    let order = permutation(dataset.n_rows(), seed);
    dataset
        .select_rows(&order)
        .expect("permutation indices are in bounds")
}

/// Splits into `(train, test)` after a seeded shuffle; `train_fraction` of
/// the rows (rounded down, at least 1) go to the training set.
///
/// # Errors
/// [`DataError::Empty`] if either side would be empty (fewer than 2 rows,
/// or a fraction at the extremes).
pub fn shuffle_split(
    dataset: &Dataset,
    train_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset), DataError> {
    if !(0.0..=1.0).contains(&train_fraction) {
        return Err(DataError::Parse(format!(
            "train_fraction must be in [0, 1], got {train_fraction}"
        )));
    }
    let n = dataset.n_rows();
    let n_train = ((n as f64 * train_fraction) as usize).max(1);
    if n_train >= n {
        return Err(DataError::Empty);
    }
    let order = permutation(n, seed);
    let train = dataset.select_rows(&order[..n_train])?;
    let test = dataset.select_rows(&order[n_train..])?;
    Ok((train, test))
}

/// Seeded k-fold split: returns `k` `(train, test)` pairs whose test sides
/// partition the shuffled rows.
///
/// # Errors
/// [`DataError::Parse`] for `k < 2` or `k > n`.
pub fn k_fold(
    dataset: &Dataset,
    k: usize,
    seed: u64,
) -> Result<Vec<(Dataset, Dataset)>, DataError> {
    let n = dataset.n_rows();
    if k < 2 || k > n {
        return Err(DataError::Parse(format!("k must be in 2..={n}, got {k}")));
    }
    let order = permutation(n, seed);
    let mut folds = Vec::with_capacity(k);
    for fold in 0..k {
        // Fold boundaries distribute the remainder over the first folds.
        let lo = fold * n / k;
        let hi = (fold + 1) * n / k;
        let test_rows = &order[lo..hi];
        let train_rows: Vec<usize> = order[..lo].iter().chain(&order[hi..]).copied().collect();
        folds.push((
            dataset.select_rows(&train_rows)?,
            dataset.select_rows(test_rows)?,
        ));
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform;

    fn labeled(n: usize) -> Dataset {
        let mut ds = uniform(n, 2, 3);
        ds.set_labels((0..n as u32).collect()).unwrap();
        ds
    }

    #[test]
    fn permutation_is_a_permutation_and_seeded() {
        let a = permutation(50, 1);
        let b = permutation(50, 1);
        let c = permutation(50, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_preserves_row_content() {
        let ds = labeled(30);
        let shuffled = shuffle(&ds, 9);
        assert_eq!(shuffled.n_rows(), 30);
        // Labels identify original rows; each must appear exactly once with
        // its own values.
        let labels = shuffled.labels().unwrap();
        let mut seen: Vec<u32> = labels.to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..30).collect::<Vec<_>>());
        for (i, &label) in labels.iter().enumerate() {
            assert_eq!(shuffled.row(i), ds.row(label as usize));
        }
    }

    #[test]
    fn shuffle_split_partitions() {
        let ds = labeled(100);
        let (train, test) = shuffle_split(&ds, 0.7, 4).unwrap();
        assert_eq!(train.n_rows(), 70);
        assert_eq!(test.n_rows(), 30);
        let mut all: Vec<u32> = train
            .labels()
            .unwrap()
            .iter()
            .chain(test.labels().unwrap())
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_split_edge_cases() {
        let ds = labeled(10);
        assert!(shuffle_split(&ds, 1.5, 1).is_err());
        assert!(shuffle_split(&ds, 1.0, 1).is_err()); // empty test side
        let (train, test) = shuffle_split(&ds, 0.0, 1).unwrap(); // min 1 train row
        assert_eq!(train.n_rows(), 1);
        assert_eq!(test.n_rows(), 9);
    }

    #[test]
    fn k_fold_test_sides_partition() {
        let ds = labeled(23); // non-divisible on purpose
        let folds = k_fold(&ds, 4, 8).unwrap();
        assert_eq!(folds.len(), 4);
        let mut all: Vec<u32> = Vec::new();
        for (train, test) in &folds {
            assert_eq!(train.n_rows() + test.n_rows(), 23);
            all.extend(test.labels().unwrap());
        }
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        // Fold sizes differ by at most one.
        let sizes: Vec<usize> = folds.iter().map(|(_, t)| t.n_rows()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn k_fold_validation() {
        let ds = labeled(5);
        assert!(k_fold(&ds, 1, 0).is_err());
        assert!(k_fold(&ds, 6, 0).is_err());
        assert!(k_fold(&ds, 5, 0).is_ok()); // leave-one-out
    }
}
