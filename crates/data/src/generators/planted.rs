//! Planted subspace outliers with ground truth.
//!
//! The workload that operationalizes the paper's Figure 1: a correlated bulk
//! in which certain records are replaced by **contrarian combinations** —
//! each planted outlier picks one factor group and sets one attribute of the
//! group to a low marginal quantile and another to a high one. Because the
//! group is strongly positively correlated, that combination of grid ranges
//! is nearly empty in the bulk; because each value is individually at an
//! unremarkable quantile (default 12 % / 88 %), the outlier is invisible to
//! single-attribute screens, and because only 2 of `d` attributes are
//! touched, full-dimensional distance measures barely notice it.

use super::correlated::standard_normal;
use crate::dataset::Dataset;
use hdoutlier_rng::Rng;

/// Configuration for [`planted_outliers`].
#[derive(Debug, Clone)]
pub struct PlantedConfig {
    /// Number of records, including the outliers.
    pub n_rows: usize,
    /// Number of attributes.
    pub n_dims: usize,
    /// Attributes per correlated factor group (must be >= 2 so a contrarian
    /// pair exists inside a group).
    pub group_size: usize,
    /// Within-group loading (pairwise correlation is `strength²`).
    pub strength: f64,
    /// Number of planted outlier records.
    pub n_outliers: usize,
    /// Marginal quantile for the "low" side of a contrarian pair; the high
    /// side uses `1 − low_quantile`. Keep this away from the extremes so the
    /// outlier stays marginally unremarkable.
    pub low_quantile: f64,
    /// If set, only the first `strong_groups` factor groups use `strength`
    /// (and signatures are planted only there); the remaining groups use
    /// `background_strength`. `None` keeps every group at `strength`.
    ///
    /// Strong correlation is what empties a pair's contrarian corner — but
    /// it also creates *organic* near-empty shoulder cells that compete with
    /// the planted cubes. Limiting the strongly structured groups keeps the
    /// sparse-cube landscape dominated by the ground truth, useful for
    /// demos and precision/recall evaluation.
    pub strong_groups: Option<usize>,
    /// Loading for the non-strong groups when `strong_groups` is set.
    pub background_strength: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        Self {
            n_rows: 1000,
            n_dims: 20,
            group_size: 2,
            strength: 0.95,
            n_outliers: 10,
            low_quantile: 0.12,
            strong_groups: None,
            background_strength: 0.5,
            seed: 0,
        }
    }
}

/// A generated dataset together with its ground truth.
#[derive(Debug, Clone)]
pub struct PlantedOutliers {
    /// The data; outlier rows are scattered uniformly among the bulk.
    pub dataset: Dataset,
    /// Row indices of planted outliers, ascending.
    pub outlier_rows: Vec<usize>,
    /// For each planted outlier (aligned with `outlier_rows`): the pair of
    /// dimensions carrying the contrarian signature `(low_dim, high_dim)`.
    pub signatures: Vec<(usize, usize)>,
}

impl PlantedOutliers {
    /// Whether `row` is a planted outlier.
    pub fn is_outlier(&self, row: usize) -> bool {
        self.outlier_rows.binary_search(&row).is_ok()
    }

    /// Precision of a reported outlier set against the ground truth:
    /// `|reported ∩ planted| / |reported|`. Returns `None` for an empty report.
    pub fn precision(&self, reported: &[usize]) -> Option<f64> {
        if reported.is_empty() {
            return None;
        }
        let hits = reported.iter().filter(|&&r| self.is_outlier(r)).count();
        Some(hits as f64 / reported.len() as f64)
    }

    /// Recall of a reported outlier set: `|reported ∩ planted| / |planted|`.
    /// Returns `None` if nothing was planted.
    pub fn recall(&self, reported: &[usize]) -> Option<f64> {
        if self.outlier_rows.is_empty() {
            return None;
        }
        let hits = reported.iter().filter(|&&r| self.is_outlier(r)).count();
        Some(hits as f64 / self.outlier_rows.len() as f64)
    }
}

/// Generates a correlated bulk with `n_outliers` contrarian records and full
/// ground truth. See the module docs for the construction.
pub fn planted_outliers(config: &PlantedConfig) -> PlantedOutliers {
    assert!(config.group_size >= 2, "group_size must be >= 2");
    assert!(
        config.n_outliers <= config.n_rows,
        "cannot plant more outliers than rows"
    );
    assert!(
        (0.0..0.5).contains(&config.low_quantile),
        "low_quantile must be in [0, 0.5)"
    );
    assert!(
        (0.0..=1.0).contains(&config.strength),
        "strength must be in [0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&config.background_strength),
        "background_strength must be in [0, 1]"
    );
    let mut rng = super::rng(config.seed);
    let n_groups = config.n_dims / config.group_size; // full groups only
    assert!(n_groups >= 1, "need at least one full factor group");
    let signature_groups = match config.strong_groups {
        Some(s) => {
            assert!(
                s >= 1 && s <= n_groups,
                "strong_groups must be in 1..={n_groups}"
            );
            s
        }
        None => n_groups,
    };
    let strength_of = |g: usize| {
        if g < signature_groups {
            config.strength
        } else {
            config.background_strength
        }
    };

    // Choose which rows are outliers: a uniform sample without replacement.
    let mut outlier_rows = sample_without_replacement(&mut rng, config.n_rows, config.n_outliers);
    outlier_rows.sort_unstable();

    // Marginals are N(0,1); convert the target quantiles to z-values.
    let z_low = hdoutlier_stats::normal::standard_quantile(config.low_quantile);
    let z_high = -z_low;

    let mut values = Vec::with_capacity(config.n_rows * config.n_dims);
    let mut factors = vec![0.0f64; config.n_dims.div_ceil(config.group_size)];
    let mut signatures = Vec::with_capacity(config.n_outliers);
    let mut next_outlier = 0usize;
    for row in 0..config.n_rows {
        for f in factors.iter_mut() {
            *f = standard_normal(&mut rng);
        }
        let start = values.len();
        for j in 0..config.n_dims {
            let g = j / config.group_size;
            let s = strength_of(g);
            let eps = standard_normal(&mut rng);
            values.push(s * factors[g] + (1.0 - s * s).sqrt() * eps);
        }
        if next_outlier < outlier_rows.len() && outlier_rows[next_outlier] == row {
            // Overwrite one within-group pair with the contrarian combo.
            let g = rng.gen_range(0..signature_groups);
            let base = g * config.group_size;
            let lo_off = rng.gen_range(0..config.group_size);
            let hi_off = loop {
                let o = rng.gen_range(0..config.group_size);
                if o != lo_off {
                    break o;
                }
            };
            let (low_dim, high_dim) = (base + lo_off, base + hi_off);
            values[start + low_dim] = z_low + 0.02 * standard_normal(&mut rng);
            values[start + high_dim] = z_high + 0.02 * standard_normal(&mut rng);
            signatures.push((low_dim, high_dim));
            next_outlier += 1;
        }
    }

    let dataset = Dataset::new(values, config.n_rows, config.n_dims).expect("shape consistent");
    PlantedOutliers {
        dataset,
        outlier_rows,
        signatures,
    }
}

/// Uniform sample of `k` distinct values from `0..n` (Floyd's algorithm).
fn sample_without_replacement<R: Rng>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.contains(&t) { j } else { t };
        chosen.insert(pick);
        out.push(pick);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::correlated::pearson;

    #[test]
    fn ground_truth_is_consistent() {
        let p = planted_outliers(&PlantedConfig::default());
        assert_eq!(p.outlier_rows.len(), 10);
        assert_eq!(p.signatures.len(), 10);
        assert_eq!(p.dataset.n_rows(), 1000);
        assert_eq!(p.dataset.n_dims(), 20);
        // Rows are sorted, unique, and in bounds.
        for w in p.outlier_rows.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*p.outlier_rows.last().unwrap() < 1000);
        // Signature dims are within one group and distinct.
        for &(lo, hi) in &p.signatures {
            assert_ne!(lo, hi);
            assert_eq!(lo / 2, hi / 2, "pair ({lo},{hi}) not within a group");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = planted_outliers(&PlantedConfig::default());
        let b = planted_outliers(&PlantedConfig::default());
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.outlier_rows, b.outlier_rows);
    }

    #[test]
    fn outliers_are_marginally_unremarkable() {
        let config = PlantedConfig {
            n_rows: 5000,
            n_outliers: 20,
            ..PlantedConfig::default()
        };
        let p = planted_outliers(&config);
        for (&row, &(lo, hi)) in p.outlier_rows.iter().zip(&p.signatures) {
            // The planted values sit near the 12 % / 88 % quantiles of a
            // standard normal: roughly ±1.17, far from the ±3 tails.
            let vl = p.dataset.value(row, lo);
            let vh = p.dataset.value(row, hi);
            assert!(vl.abs() < 2.0, "low value {vl} too extreme");
            assert!(vh.abs() < 2.0, "high value {vh} too extreme");
            assert!(vl < 0.0 && vh > 0.0);
        }
    }

    #[test]
    fn outliers_are_jointly_contrarian() {
        // In the bulk, the signature pair is strongly positively correlated;
        // planted rows have (low, high) — a combination the bulk essentially
        // never produces.
        let config = PlantedConfig {
            n_rows: 5000,
            n_outliers: 10,
            strength: 0.95,
            ..PlantedConfig::default()
        };
        let p = planted_outliers(&config);
        let (lo, hi) = p.signatures[0];
        let col_lo = p.dataset.column(lo);
        let col_hi = p.dataset.column(hi);
        // Correlation including outliers still strongly positive.
        assert!(pearson(&col_lo, &col_hi) > 0.8);
        // Count bulk rows with a similarly contrarian combination.
        let row0 = p.outlier_rows[0];
        let (vl, vh) = (p.dataset.value(row0, lo), p.dataset.value(row0, hi));
        let contrarian = (0..p.dataset.n_rows())
            .filter(|&r| !p.is_outlier(r))
            .filter(|&r| p.dataset.value(r, lo) <= vl && p.dataset.value(r, hi) >= vh)
            .count();
        assert!(
            contrarian <= 2,
            "bulk produced {contrarian} equally-contrarian rows"
        );
    }

    #[test]
    fn precision_recall_helpers() {
        let p = planted_outliers(&PlantedConfig {
            n_rows: 100,
            n_outliers: 4,
            ..PlantedConfig::default()
        });
        let all = p.outlier_rows.clone();
        assert_eq!(p.precision(&all), Some(1.0));
        assert_eq!(p.recall(&all), Some(1.0));
        assert_eq!(p.precision(&[]), None);
        let half = &all[..2];
        assert_eq!(p.recall(half), Some(0.5));
        let none_planted = planted_outliers(&PlantedConfig {
            n_rows: 50,
            n_outliers: 0,
            ..PlantedConfig::default()
        });
        assert_eq!(none_planted.recall(&[1, 2]), None);
        assert_eq!(none_planted.precision(&[1, 2]), Some(0.0));
    }

    #[test]
    fn sample_without_replacement_is_distinct_and_in_range() {
        let mut rng = crate::generators::rng(9);
        for _ in 0..20 {
            let s = sample_without_replacement(&mut rng, 30, 10);
            assert_eq!(s.len(), 10);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), 10);
            assert!(s.iter().all(|&x| x < 30));
        }
        // Edge: k == n yields a permutation of 0..n.
        let mut s = sample_without_replacement(&mut rng, 5, 5);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
        assert!(sample_without_replacement(&mut rng, 5, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "group_size")]
    fn group_size_one_rejected() {
        planted_outliers(&PlantedConfig {
            group_size: 1,
            ..PlantedConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "more outliers")]
    fn too_many_outliers_rejected() {
        planted_outliers(&PlantedConfig {
            n_rows: 5,
            n_outliers: 6,
            ..PlantedConfig::default()
        });
    }
}
