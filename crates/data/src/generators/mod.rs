//! Seeded synthetic data generators.
//!
//! Every generator is deterministic given its seed, so experiments and tests
//! are exactly reproducible. Three families:
//!
//! - [`uniform`]: i.i.d. uniform data — the null model under which Eq. 1's
//!   sparsity coefficient is exactly a standardized binomial. Used to
//!   calibrate and to show that *no* strong outliers exist in noise.
//! - [`correlated`]: latent-factor Gaussian data whose attributes are
//!   pairwise correlated — the "structured cross-sections" of the paper's
//!   Figure 1. Correlation is what makes contrarian combinations rare.
//! - [`planted`]: correlated bulk plus records whose values are *marginally
//!   unremarkable but jointly contrarian* in a small subspace, with ground
//!   truth — the workload on which subspace methods must beat full-
//!   dimensional distance methods.
//! - [`uci_like`]: simulacra shaped like the five UCI datasets of Table 1
//!   plus arrhythmia (Table 2 / §3.1) and Boston housing (§3.1). See
//!   DESIGN.md §4 for why these stand in for the 2001 UCI files.

pub mod correlated;
pub mod planted;
pub mod uci_like;
pub mod uniform;

pub use correlated::{correlated, CorrelatedConfig};
pub use planted::{planted_outliers, PlantedConfig, PlantedOutliers};
pub use uniform::uniform;

use hdoutlier_rng::rngs::StdRng;
use hdoutlier_rng::SeedableRng;

/// The RNG used by all generators: seeded, portable, deterministic.
pub(crate) fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
