//! I.i.d. uniform data — the calibration null model.

use crate::dataset::Dataset;
use hdoutlier_rng::Rng;

/// Generates `n_rows × n_dims` of i.i.d. `Uniform[0, 1)` values.
///
/// Under this null model, cube occupancy follows the Binomial(N, f^k) law of
/// Eq. 1 *exactly* (up to the equi-depth grid's integer rounding), which is
/// what the calibration tests and `repro params` rely on.
pub fn uniform(n_rows: usize, n_dims: usize, seed: u64) -> Dataset {
    let mut rng = super::rng(seed);
    let values: Vec<f64> = (0..n_rows * n_dims).map(|_| rng.gen::<f64>()).collect();
    Dataset::new(values, n_rows, n_dims).expect("shape is consistent by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_range() {
        let ds = uniform(100, 7, 42);
        assert_eq!(ds.n_rows(), 100);
        assert_eq!(ds.n_dims(), 7);
        for row in ds.rows() {
            for &v in row {
                assert!((0.0..1.0).contains(&v));
            }
        }
        assert_eq!(ds.missing_count(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(uniform(50, 3, 7), uniform(50, 3, 7));
        assert_ne!(uniform(50, 3, 7), uniform(50, 3, 8));
    }

    #[test]
    fn roughly_uniform_marginals() {
        let ds = uniform(10_000, 1, 1);
        let col = ds.column(0);
        let mean = col.iter().sum::<f64>() / col.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let below_quarter = col.iter().filter(|&&v| v < 0.25).count();
        assert!((below_quarter as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }
}
