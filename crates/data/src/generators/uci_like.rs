//! UCI-shaped dataset simulacra.
//!
//! The paper's evaluation (§3) runs on five UCI datasets (Table 1), the
//! arrhythmia dataset (Table 2 and the rare-class experiment of §3.1), and
//! Boston housing (§3.1's case study). The 2001-era UCI files are not
//! available in this environment, so each dataset here is a **seeded
//! simulacrum that matches the published shape** — row count, attribute
//! count, class distribution — and embeds the *kind* of structure the paper
//! argues real data has: strongly correlated attribute groups with a small
//! number of records that are contrarian in a low-dimensional subspace.
//! DESIGN.md §4 records the substitution argument; the experiments measure
//! scaling with (N, d, φ, k) and the subspace-vs-distance comparison, both
//! of which depend only on this structure, not on the original byte values.

use super::correlated::standard_normal;
use super::planted::{planted_outliers, PlantedConfig, PlantedOutliers};
use crate::dataset::Dataset;
use hdoutlier_rng::seq::SliceRandom;
use hdoutlier_rng::Rng;

/// A Table-1 style simulacrum: data plus the planted ground truth.
#[derive(Debug, Clone)]
pub struct Simulacrum {
    /// The generated dataset (names and labels attached).
    pub dataset: Dataset,
    /// Rows carrying a planted contrarian subspace signature.
    pub planted_rows: Vec<usize>,
    /// The signature dims `(low, high)` per planted row.
    pub signatures: Vec<(usize, usize)>,
    /// Which dataset this mimics.
    pub name: &'static str,
}

struct Spec {
    name: &'static str,
    n_rows: usize,
    n_dims: usize,
    group_size: usize,
    strength: f64,
    n_outliers: usize,
    /// Class sizes; empty means unlabeled. Must sum to `n_rows`.
    class_sizes: &'static [usize],
    /// Number of missing entries sprinkled uniformly.
    n_missing: usize,
}

fn build(spec: &Spec, seed: u64) -> Simulacrum {
    debug_assert!(
        spec.class_sizes.is_empty() || spec.class_sizes.iter().sum::<usize>() == spec.n_rows,
        "class sizes must sum to n_rows"
    );
    let planted = planted_outliers(&PlantedConfig {
        n_rows: spec.n_rows,
        n_dims: spec.n_dims,
        group_size: spec.group_size,
        strength: spec.strength,
        n_outliers: spec.n_outliers,
        low_quantile: 0.12,
        strong_groups: None,
        background_strength: 0.5,
        seed,
    });
    let PlantedOutliers {
        mut dataset,
        outlier_rows,
        signatures,
    } = planted;

    let mut rng = super::rng(seed ^ 0x9e37_79b9_7f4a_7c15);
    if !spec.class_sizes.is_empty() {
        let mut labels: Vec<u32> = spec
            .class_sizes
            .iter()
            .enumerate()
            .flat_map(|(c, &n)| std::iter::repeat_n(c as u32, n))
            .collect();
        labels.shuffle(&mut rng);
        dataset.set_labels(labels).expect("len checked");
    }
    if spec.n_missing > 0 {
        // Rebuild with sprinkled missing entries, avoiding signature cells so
        // the ground truth stays detectable.
        let protected: std::collections::HashSet<(usize, usize)> = outlier_rows
            .iter()
            .zip(&signatures)
            .flat_map(|(&r, &(lo, hi))| [(r, lo), (r, hi)])
            .collect();
        let mut rows: Vec<Vec<f64>> = dataset.rows().map(<[f64]>::to_vec).collect();
        let mut placed = 0;
        while placed < spec.n_missing {
            let r = rng.gen_range(0..spec.n_rows);
            let c = rng.gen_range(0..spec.n_dims);
            if protected.contains(&(r, c)) || rows[r][c].is_nan() {
                continue;
            }
            rows[r][c] = f64::NAN;
            placed += 1;
        }
        let labels = dataset.labels().map(<[u32]>::to_vec);
        let names = dataset.names().to_vec();
        dataset = Dataset::from_rows(rows).expect("same shape");
        dataset.set_names(names).expect("same dims");
        if let Some(l) = labels {
            dataset.set_labels(l).expect("same rows");
        }
    }
    Simulacrum {
        dataset,
        planted_rows: outlier_rows,
        signatures,
        name: spec.name,
    }
}

/// Wisconsin breast cancer simulacrum: 699 records, 14 attributes, two
/// classes (benign 458 / malignant 241), 16 missing entries — the
/// "Breast Cancer (14)" row of Table 1.
pub fn breast_cancer(seed: u64) -> Simulacrum {
    build(
        &Spec {
            name: "breast_cancer",
            n_rows: 699,
            n_dims: 14,
            group_size: 2,
            strength: 0.7,
            n_outliers: 8,
            class_sizes: &[458, 241],
            n_missing: 16,
        },
        seed,
    )
}

/// Ionosphere simulacrum: 351 records, 34 attributes, two classes
/// (good 225 / bad 126) — the "Ionosphere (34)" row of Table 1.
pub fn ionosphere(seed: u64) -> Simulacrum {
    build(
        &Spec {
            name: "ionosphere",
            n_rows: 351,
            n_dims: 34,
            group_size: 2,
            strength: 0.7,
            n_outliers: 6,
            class_sizes: &[225, 126],
            n_missing: 0,
        },
        seed,
    )
}

/// Image segmentation simulacrum: 2310 records, 19 attributes, seven equal
/// classes of 330 — the "Segmentation (19)" row of Table 1.
pub fn segmentation(seed: u64) -> Simulacrum {
    build(
        &Spec {
            name: "segmentation",
            n_rows: 2310,
            n_dims: 19,
            group_size: 2,
            strength: 0.7,
            n_outliers: 12,
            class_sizes: &[330, 330, 330, 330, 330, 330, 330],
            n_missing: 0,
        },
        seed,
    )
}

/// Musk simulacrum: 476 records, 160 attributes, two classes
/// (musk 207 / non-musk 269) — the "Musk (160)" row of Table 1, the case on
/// which the paper's brute-force search could not terminate.
pub fn musk(seed: u64) -> Simulacrum {
    build(
        &Spec {
            name: "musk",
            n_rows: 476,
            n_dims: 160,
            group_size: 2,
            strength: 0.95,
            n_outliers: 10,
            class_sizes: &[207, 269],
            n_missing: 0,
        },
        seed,
    )
}

/// CPU performance ("machine") simulacrum: 209 records, 8 attributes,
/// unlabeled — the "Machine (8)" row of Table 1, the case small enough that
/// brute force beats the GA's fixed overhead.
pub fn machine(seed: u64) -> Simulacrum {
    build(
        &Spec {
            name: "machine",
            n_rows: 209,
            n_dims: 8,
            group_size: 2,
            strength: 0.7,
            n_outliers: 5,
            class_sizes: &[],
            n_missing: 0,
        },
        seed,
    )
}

/// All five Table-1 simulacra in the paper's row order.
pub fn table1_datasets(seed: u64) -> Vec<Simulacrum> {
    vec![
        breast_cancer(seed),
        ionosphere(seed.wrapping_add(1)),
        segmentation(seed.wrapping_add(2)),
        musk(seed.wrapping_add(3)),
        machine(seed.wrapping_add(4)),
    ]
}

// ---------------------------------------------------------------------------
// Arrhythmia
// ---------------------------------------------------------------------------

/// The real arrhythmia class distribution (class code, record count) —
/// 452 records over 13 non-empty classes. Classes {1, 2, 6, 10, 16} hold
/// 386 records (85.4 %); the other eight hold 66 (14.6 %) and are the
/// "rare" classes of Table 2.
pub const ARRHYTHMIA_CLASS_COUNTS: &[(u32, usize)] = &[
    (1, 245),
    (2, 44),
    (3, 15),
    (4, 15),
    (5, 13),
    (6, 25),
    (7, 3),
    (8, 2),
    (9, 9),
    (10, 50),
    (14, 4),
    (15, 5),
    (16, 22),
];

/// Class codes occurring in ≥ 5 % of records.
pub const ARRHYTHMIA_COMMON_CLASSES: &[u32] = &[1, 2, 6, 10, 16];
/// Class codes occurring in < 5 % of records.
pub const ARRHYTHMIA_RARE_CLASSES: &[u32] = &[3, 4, 5, 7, 8, 9, 14, 15];

/// Configuration knobs for the arrhythmia simulacrum.
#[derive(Debug, Clone)]
pub struct ArrhythmiaConfig {
    /// RNG seed.
    pub seed: u64,
    /// Fraction of rare-class records that additionally get a mild global
    /// magnitude boost. This is what gives full-dimensional distance methods
    /// *partial* signal — the paper's baseline \[25\] still found 28 of its 85
    /// top outliers in rare classes, so rare records cannot be completely
    /// invisible to distance.
    pub boosted_fraction: f64,
    /// Noise scale multiplier for boosted records.
    pub boost_scale: f64,
}

impl Default for ArrhythmiaConfig {
    fn default() -> Self {
        Self {
            seed: 2001,
            boosted_fraction: 0.45,
            // In 279 dimensions distances concentrate within ~1/sqrt(d) ≈ 6%
            // of their mean, so even a 12% noise inflation is *partially*
            // separable — enough for the baseline to beat the base rate, far
            // from enough to match the subspace method (the paper's 28 vs 43).
            boost_scale: 1.12,
        }
    }
}

/// The arrhythmia simulacrum plus its evaluation ground truth.
#[derive(Debug, Clone)]
pub struct Arrhythmia {
    /// 452 × 279, labels = class codes of [`ARRHYTHMIA_CLASS_COUNTS`].
    pub dataset: Dataset,
    /// Rows whose class is rare (< 5 %).
    pub rare_rows: Vec<usize>,
    /// The deliberately corrupted record (height 780 cm, weight 6 kg) — the
    /// recording-error anecdote of §3.1. Its class is common.
    pub error_row: usize,
}

impl Arrhythmia {
    /// Whether a row belongs to a rare class.
    pub fn is_rare(&self, row: usize) -> bool {
        self.rare_rows.binary_search(&row).is_ok()
    }

    /// Of the given reported outlier rows, how many are rare-class.
    pub fn rare_hits(&self, reported: &[usize]) -> usize {
        reported.iter().filter(|&&r| self.is_rare(r)).count()
    }
}

/// Generates the arrhythmia simulacrum: 452 records × 279 attributes.
///
/// Construction:
/// - The bulk is factor-group-correlated `N(0,1)` data (groups of 3, so the
///   ECG channels come in correlated bundles), then the first four columns
///   are rescaled to age/sex/height/weight units.
/// - Every **rare-class** record carries a contrarian two-dimensional
///   signature inside the factor group assigned to its class — marginally
///   mild values whose *combination* the common classes essentially never
///   produce. A [`ArrhythmiaConfig::boosted_fraction`] of rare records also
///   get globally scaled noise so distance-based methods retain partial
///   signal.
/// - One common-class record is corrupted into the paper's recording-error
///   anecdote: height 780 cm, weight 6 kg.
pub fn arrhythmia(config: &ArrhythmiaConfig) -> Arrhythmia {
    const N_ROWS: usize = 452;
    const N_DIMS: usize = 279;
    /// Dims are organized in bundles of 3 ECG channels; within each bundle
    /// the first two channels are strongly correlated, the third is noise.
    const GROUP: usize = 3;
    /// Loading of correlated channel pairs. High on purpose: only where a
    /// pair is near-deterministic is its contrarian corner near-empty, which
    /// is what lets a planted signature create a genuinely sparse cube. At
    /// lower correlations the corner fills with bulk records and *nothing*
    /// in the dataset would be abnormally sparse.
    const STRENGTH: f64 = 0.985;
    /// Patterns (distinct signature cubes) per rare class. Five keeps the
    /// largest rare class (15 records) at ~3 records per cube — sparse
    /// enough for S ≤ −3 at (N = 452, φ = 5, k = 2) where a cube is "sparse"
    /// up to 5 occupants — while a single shared cube would hold all 15 and
    /// not be sparse at all.
    const PATTERNS_PER_CLASS: usize = 5;
    let mut rng = super::rng(config.seed);

    // Assign class labels: expand counts, shuffle.
    let mut labels: Vec<u32> = ARRHYTHMIA_CLASS_COUNTS
        .iter()
        .flat_map(|&(code, n)| std::iter::repeat_n(code, n))
        .collect();
    debug_assert_eq!(labels.len(), N_ROWS);
    labels.shuffle(&mut rng);

    // Each rare class owns PATTERNS_PER_CLASS abnormality patterns —
    // (channel bundle, fixed orientation) pairs, well away from the
    // demographic columns — and each of its records carries one of them.
    let rare_groups_of = |code: u32| -> [usize; PATTERNS_PER_CLASS] {
        let idx = ARRHYTHMIA_RARE_CLASSES
            .iter()
            .position(|&c| c == code)
            .expect("rare code");
        let base = 10 + idx * PATTERNS_PER_CLASS; // groups 10..50, no overlap
        std::array::from_fn(|i| base + i)
    };

    // Only the signature bundles carry a correlated channel pair (their
    // first two channels share a factor); every other dimension is
    // independent noise — the "many noisy cross-sections, a few structured
    // ones" world of the paper's Figure 1. Independent pairs have cube
    // occupancies concentrated near N/φ² ≈ 18, far from sparse, so the
    // sparse-cube landscape is dominated by the planted abnormality plus the
    // structured pairs' own rare corners.
    let structured_group =
        |g: usize| (10..10 + ARRHYTHMIA_RARE_CLASSES.len() * PATTERNS_PER_CLASS).contains(&g);
    let noise_scale = (1.0 - STRENGTH * STRENGTH).sqrt();
    let n_groups = N_DIMS.div_ceil(GROUP);
    let z_low = hdoutlier_stats::normal::standard_quantile(0.10);
    let z_high = -z_low;

    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(N_ROWS);
    let mut rare_rows = Vec::new();
    for (row_idx, &label) in labels.iter().enumerate() {
        let rare = ARRHYTHMIA_RARE_CLASSES.contains(&label);
        let boosted = rare && rng.gen::<f64>() < config.boosted_fraction;
        let scale = if boosted { config.boost_scale } else { 1.0 };
        let mut factors = vec![0.0f64; n_groups];
        for f in factors.iter_mut() {
            *f = standard_normal(&mut rng);
        }
        let mut row: Vec<f64> = (0..N_DIMS)
            .map(|j| {
                let g = j / GROUP;
                let value = if j % GROUP < 2 && structured_group(g) {
                    STRENGTH * factors[g] + noise_scale * standard_normal(&mut rng)
                } else {
                    standard_normal(&mut rng)
                };
                scale * value
            })
            .collect();
        if rare {
            let groups = rare_groups_of(label);
            let which = rng.gen_range(0..PATTERNS_PER_CLASS);
            let g = groups[which];
            let base = g * GROUP;
            // Orientation is fixed per pattern so a class's records share
            // cubes (alternating by pattern index for variety across classes).
            let (a, b) = if which % 2 == 0 {
                (z_low, z_high)
            } else {
                (z_high, z_low)
            };
            row[base] = a + 0.05 * standard_normal(&mut rng);
            row[base + 1] = b + 0.05 * standard_normal(&mut rng);
            rare_rows.push(row_idx);
        }
        rows.push(row);
    }

    // Rescale demographics to physical units: age, sex, height, weight.
    // Weight is re-derived from height's latent value so the two are
    // strongly correlated, as in real anthropometry — that correlation is
    // what makes the recording-error record's (tall, featherweight)
    // *combination* land in a near-empty cube.
    for row in rows.iter_mut() {
        let height_z = row[2];
        row[0] = (46.0 + 16.0 * row[0]).clamp(1.0, 95.0); // age, years
        row[1] = if row[1] > 0.0 { 1.0 } else { 0.0 }; // sex
        row[2] = (165.0 + 10.0 * height_z).clamp(120.0, 210.0); // height, cm
        let weight_z = 0.85 * height_z + 0.53 * standard_normal(&mut rng);
        row[3] = (68.0 + 14.0 * weight_z).clamp(25.0, 150.0); // weight, kg
    }

    // Corrupt one common-class record into the recording-error anecdote.
    let error_row = labels
        .iter()
        .position(|&c| c == 1)
        .expect("class 1 is the largest class");
    rows[error_row][2] = 780.0; // height, cm — impossible
    rows[error_row][3] = 6.0; // weight, kg — impossible

    let mut names: Vec<String> = vec!["age".into(), "sex".into(), "height".into(), "weight".into()];
    names.extend((4..N_DIMS).map(|j| format!("ch_{j}")));

    let mut dataset = Dataset::from_rows(rows).expect("consistent shape");
    dataset.set_names(names).expect("279 names");
    dataset.set_labels(labels).expect("452 labels");
    Arrhythmia {
        dataset,
        rare_rows,
        error_row,
    }
}

// ---------------------------------------------------------------------------
// Boston housing
// ---------------------------------------------------------------------------

/// Column names of the housing simulacrum — the 13 numeric attributes of the
/// Boston housing data (the binary CHAS column is excluded, as in §3.1).
pub const HOUSING_NAMES: [&str; 13] = [
    "CRIM", "ZN", "INDUS", "NOX", "RM", "AGE", "DIS", "RAD", "TAX", "PTRATIO", "B", "LSTAT", "MEDV",
];

/// The housing simulacrum with its planted case-study rows.
#[derive(Debug, Clone)]
pub struct Housing {
    /// 506 × 13, columns per [`HOUSING_NAMES`].
    pub dataset: Dataset,
    /// The three anecdote rows of §3.1, in paper order:
    /// 0. high CRIM (1.628) + high PTRATIO (21.20) + *low* DIS (1.4394);
    /// 1. low NOX (0.453) + high AGE (93.40 %) + high RAD (8);
    /// 2. low CRIM (0.04741) + modest INDUS (11.93) + *low* MEDV (11.9).
    pub anecdote_rows: [usize; 3],
}

/// Generates the Boston-housing simulacrum: 506 records × 13 attributes with
/// the real data's dominant correlation structure (an "industrialization"
/// factor driving CRIM/INDUS/NOX/AGE/RAD/TAX/PTRATIO/LSTAT up and
/// ZN/RM/DIS/B/MEDV down), plus the three contrarian §3.1 anecdotes planted
/// with the paper's exact published values.
pub fn housing(seed: u64) -> Housing {
    const N_ROWS: usize = 506;
    let mut rng = super::rng(seed);

    // Loadings on the industrialization factor (sign = direction).
    // Order matches HOUSING_NAMES.
    // Signs follow the paper's §3.1 narrative: high-crime, high
    // pupil–teacher-ratio localities are "typically far off from the
    // employment centers" (DIS loads *positively*), and pre-1940 housing
    // with high highway accessibility "usually correspond[s] to high nitric
    // oxide concentration".
    const LOADINGS: [f64; 13] = [
        0.85,  // CRIM
        -0.70, // ZN
        0.85,  // INDUS
        0.93,  // NOX
        -0.55, // RM
        0.85,  // AGE
        0.88,  // DIS
        0.88,  // RAD
        0.85,  // TAX
        0.85,  // PTRATIO
        -0.50, // B
        0.80,  // LSTAT
        -0.75, // MEDV
    ];
    // Affine transforms (mean, sd) to realistic units, then clamped at
    // plausible bounds. (6.28 is the Boston data's mean room count, not an
    // approximation of tau.)
    #[allow(clippy::approx_constant)]
    const SCALE: [(f64, f64, f64, f64); 13] = [
        (3.6, 4.0, 0.005, 89.0),      // CRIM %
        (11.4, 15.0, 0.0, 100.0),     // ZN %
        (11.1, 6.8, 0.4, 27.7),       // INDUS %
        (0.555, 0.115, 0.38, 0.87),   // NOX ppm
        (6.28, 0.70, 3.5, 8.8),       // RM rooms
        (68.6, 28.0, 2.9, 100.0),     // AGE %
        (3.80, 2.10, 1.1, 12.1),      // DIS
        (4.6, 3.0, 1.0, 24.0),        // RAD index
        (408.0, 168.0, 187.0, 711.0), // TAX
        (18.5, 2.2, 12.6, 22.0),      // PTRATIO
        (356.0, 91.0, 0.3, 396.9),    // B
        (12.7, 7.1, 1.7, 38.0),       // LSTAT %
        (22.5, 9.2, 5.0, 50.0),       // MEDV k$
    ];

    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(N_ROWS);
    for _ in 0..N_ROWS {
        let f = standard_normal(&mut rng);
        let row: Vec<f64> = (0..13)
            .map(|j| {
                let l = LOADINGS[j];
                let noise = (1.0 - l * l).sqrt() * standard_normal(&mut rng);
                let z = l * f + noise;
                if j == 0 {
                    // CRIM is heavily right-skewed in the real data (median
                    // 0.26, mean 3.6, max 89): a lognormal transform keeps
                    // the paper's published values on the correct side of
                    // the equi-depth terciles (1.628 is *high* crime, at the
                    // ~83rd percentile; 0.04741 is *low*, at the ~19th).
                    return (1.9 * z - 1.35).exp().clamp(0.005, 89.0);
                }
                let (mean, sd, lo, hi) = SCALE[j];
                (mean + sd * z).clamp(lo, hi)
            })
            .collect();
        rows.push(row);
    }

    // Plant the three published anecdotes on fixed rows (values from §3.1).
    // Row positions are arbitrary but deterministic.
    let anecdote_rows = [47usize, 211, 388];
    let name_idx = |n: &str| HOUSING_NAMES.iter().position(|&h| h == n).unwrap();
    {
        // 1: high crime, high pupil–teacher ratio, LOW distance to employment.
        let r = &mut rows[anecdote_rows[0]];
        r[name_idx("CRIM")] = 1.628;
        r[name_idx("PTRATIO")] = 21.20;
        r[name_idx("DIS")] = 1.4394;
    }
    {
        // 2: LOW nitric oxide, high pre-1940 proportion, high highway access.
        let r = &mut rows[anecdote_rows[1]];
        r[name_idx("NOX")] = 0.453;
        r[name_idx("AGE")] = 93.40;
        r[name_idx("RAD")] = 8.0;
    }
    {
        // 3: LOW crime, modest industry, LOW median home price — contrarian.
        let r = &mut rows[anecdote_rows[2]];
        r[name_idx("CRIM")] = 0.04741;
        r[name_idx("INDUS")] = 11.93;
        r[name_idx("MEDV")] = 11.9;
    }

    let mut dataset = Dataset::from_rows(rows).expect("consistent shape");
    dataset
        .set_names(HOUSING_NAMES.iter().map(|s| s.to_string()).collect())
        .expect("13 names");
    Housing {
        dataset,
        anecdote_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::correlated::pearson;

    #[test]
    fn table1_shapes_match_paper() {
        let sets = table1_datasets(1);
        let shapes: Vec<(usize, usize)> = sets
            .iter()
            .map(|s| (s.dataset.n_rows(), s.dataset.n_dims()))
            .collect();
        assert_eq!(
            shapes,
            vec![(699, 14), (351, 34), (2310, 19), (476, 160), (209, 8)]
        );
        let names: Vec<&str> = sets.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "breast_cancer",
                "ionosphere",
                "segmentation",
                "musk",
                "machine"
            ]
        );
    }

    #[test]
    fn breast_cancer_details() {
        let s = breast_cancer(5);
        assert_eq!(s.dataset.missing_count(), 16);
        let labels = s.dataset.labels().unwrap();
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 458);
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 241);
        assert_eq!(s.planted_rows.len(), 8);
        // Signature cells were protected from missingness.
        for (&r, &(lo, hi)) in s.planted_rows.iter().zip(&s.signatures) {
            assert!(!s.dataset.is_missing(r, lo));
            assert!(!s.dataset.is_missing(r, hi));
        }
    }

    #[test]
    fn machine_is_unlabeled() {
        let s = machine(5);
        assert!(s.dataset.labels().is_none());
    }

    #[test]
    fn simulacra_deterministic() {
        assert_eq!(musk(9).dataset, musk(9).dataset);
        assert_ne!(musk(9).dataset, musk(10).dataset);
    }

    #[test]
    fn arrhythmia_class_distribution_matches_table2() {
        let a = arrhythmia(&ArrhythmiaConfig::default());
        assert_eq!(a.dataset.n_rows(), 452);
        assert_eq!(a.dataset.n_dims(), 279);
        let labels = a.dataset.labels().unwrap();
        for &(code, count) in ARRHYTHMIA_CLASS_COUNTS {
            let got = labels.iter().filter(|&&l| l == code).count();
            assert_eq!(got, count, "class {code}");
        }
        // Common classes = 85.4 %, rare = 14.6 % (Table 2).
        let common: usize = labels
            .iter()
            .filter(|l| ARRHYTHMIA_COMMON_CLASSES.contains(l))
            .count();
        assert_eq!(common, 386);
        assert_eq!(a.rare_rows.len(), 66);
        let frac = common as f64 / 452.0;
        assert!((frac - 0.854) < 0.001, "common fraction {frac}");
    }

    #[test]
    fn arrhythmia_rare_rows_are_rare_classes() {
        let a = arrhythmia(&ArrhythmiaConfig::default());
        let labels = a.dataset.labels().unwrap();
        for &r in &a.rare_rows {
            assert!(ARRHYTHMIA_RARE_CLASSES.contains(&labels[r]));
        }
        for w in a.rare_rows.windows(2) {
            assert!(w[0] < w[1]); // sorted for binary_search
        }
        assert_eq!(a.rare_hits(&a.rare_rows), 66);
    }

    #[test]
    fn arrhythmia_error_row_is_physically_impossible() {
        let a = arrhythmia(&ArrhythmiaConfig::default());
        let h = a.dataset.value(a.error_row, 2);
        let w = a.dataset.value(a.error_row, 3);
        assert_eq!(h, 780.0);
        assert_eq!(w, 6.0);
        assert_eq!(a.dataset.labels().unwrap()[a.error_row], 1);
        assert!(!a.is_rare(a.error_row));
        // Everyone else is within the clamps.
        for r in 0..452 {
            if r == a.error_row {
                continue;
            }
            assert!(a.dataset.value(r, 2) <= 210.0);
            assert!(a.dataset.value(r, 3) >= 25.0);
        }
    }

    #[test]
    fn arrhythmia_demographics_have_sane_units() {
        let a = arrhythmia(&ArrhythmiaConfig::default());
        for r in 0..452 {
            let age = a.dataset.value(r, 0);
            assert!((1.0..=95.0).contains(&age));
            let sex = a.dataset.value(r, 1);
            assert!(sex == 0.0 || sex == 1.0);
        }
        assert_eq!(a.dataset.name(0), "age");
        assert_eq!(a.dataset.name(278), "ch_278");
    }

    #[test]
    fn housing_shape_and_anecdotes() {
        let h = housing(7);
        assert_eq!(h.dataset.n_rows(), 506);
        assert_eq!(h.dataset.n_dims(), 13);
        assert_eq!(h.dataset.names()[0], "CRIM");
        let crim = h.dataset.column_index("CRIM").unwrap();
        let dis = h.dataset.column_index("DIS").unwrap();
        let pt = h.dataset.column_index("PTRATIO").unwrap();
        let row = h.anecdote_rows[0];
        assert_eq!(h.dataset.value(row, crim), 1.628);
        assert_eq!(h.dataset.value(row, pt), 21.20);
        assert_eq!(h.dataset.value(row, dis), 1.4394);
        let medv = h.dataset.column_index("MEDV").unwrap();
        assert_eq!(h.dataset.value(h.anecdote_rows[2], medv), 11.9);
    }

    #[test]
    fn housing_correlation_structure_matches_reality() {
        let h = housing(11);
        let col = |n: &str| h.dataset.column(h.dataset.column_index(n).unwrap());
        // High crime tracks high pupil–teacher ratio and — per the §3.1
        // narrative — *high* distance to employment centers ("localities
        // with high crime rates and pupil-teacher ratios were also typically
        // far off from the employment centers"): that trend is what makes
        // anecdote 1's low-distance record contrarian.
        // CRIM is lognormal, so correlate its log (Pearson on the raw
        // skewed values attenuates toward zero).
        let log_crim: Vec<f64> = col("CRIM").iter().map(|v| v.ln()).collect();
        assert!(pearson(&log_crim, &col("PTRATIO")) > 0.3);
        assert!(pearson(&log_crim, &col("DIS")) > 0.3);
        // NOX rises with AGE and RAD (anecdote 2's violated trend).
        assert!(pearson(&col("NOX"), &col("AGE")) > 0.3);
        assert!(pearson(&col("NOX"), &col("RAD")) > 0.3);
        // Low crime predicts high price (anecdote 3's violated trend).
        assert!(pearson(&log_crim, &col("MEDV")) < -0.3);
    }

    #[test]
    fn housing_values_within_bounds() {
        let h = housing(13);
        let nox = h.dataset.column(h.dataset.column_index("NOX").unwrap());
        for v in nox {
            assert!((0.38..=0.87).contains(&v));
        }
        let medv = h.dataset.column(h.dataset.column_index("MEDV").unwrap());
        for v in medv {
            assert!((5.0..=50.0).contains(&v));
        }
    }
}
