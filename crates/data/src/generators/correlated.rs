//! Latent-factor correlated Gaussian data.
//!
//! Attributes are organized into *factor groups*: all dimensions in a group
//! load on one shared latent `N(0,1)` factor, so within a group every pair
//! of attributes has correlation `strength²` (positively) while attributes
//! in different groups are independent. This is the simplest mechanism that
//! produces the paper's Figure-1 world: some 2-d cross-sections are tightly
//! structured (same group), others are diffuse noise (different groups).

use crate::dataset::Dataset;
use hdoutlier_rng::Rng;

/// Configuration for [`correlated`].
#[derive(Debug, Clone)]
pub struct CorrelatedConfig {
    /// Number of records.
    pub n_rows: usize,
    /// Number of attributes.
    pub n_dims: usize,
    /// Attributes per factor group; consecutive dimensions
    /// `[0..group), [group..2·group), …` share a factor. The tail group may
    /// be smaller. A value of 1 yields fully independent data.
    pub group_size: usize,
    /// Loading of each attribute on its group factor, in `[0, 1]`.
    /// Within-group pairwise correlation is `strength²`.
    pub strength: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorrelatedConfig {
    fn default() -> Self {
        Self {
            n_rows: 1000,
            n_dims: 10,
            group_size: 2,
            strength: 0.95,
            seed: 0,
        }
    }
}

/// Generates correlated Gaussian data per the factor-group model.
///
/// Each value is `strength·z_g + sqrt(1 − strength²)·ε`, with `z_g` the
/// record's factor for the attribute's group and `ε` i.i.d. `N(0,1)`.
/// Marginals are exactly `N(0,1)` regardless of `strength`.
pub fn correlated(config: &CorrelatedConfig) -> Dataset {
    assert!(
        (0.0..=1.0).contains(&config.strength),
        "strength must be in [0, 1]"
    );
    assert!(config.group_size >= 1, "group_size must be >= 1");
    let mut rng = super::rng(config.seed);
    let n_groups = config.n_dims.div_ceil(config.group_size);
    let noise_scale = (1.0 - config.strength * config.strength).sqrt();
    let mut values = Vec::with_capacity(config.n_rows * config.n_dims);
    let mut factors = vec![0.0f64; n_groups];
    for _ in 0..config.n_rows {
        for f in factors.iter_mut() {
            *f = standard_normal(&mut rng);
        }
        for j in 0..config.n_dims {
            let g = j / config.group_size;
            let eps = standard_normal(&mut rng);
            values.push(config.strength * factors[g] + noise_scale * eps);
        }
    }
    Dataset::new(values, config.n_rows, config.n_dims).expect("shape consistent")
}

/// Standard normal sampling via Box–Muller, keeping the workspace free of a
/// `rand_distr` dependency. Shared by the sibling generators.
pub(crate) fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Box–Muller: u1 in (0,1], u2 in [0,1).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Pearson correlation between two equal-length slices (NaNs must be absent).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let c = CorrelatedConfig {
            n_rows: 200,
            n_dims: 6,
            ..CorrelatedConfig::default()
        };
        let a = correlated(&c);
        assert_eq!(a.n_rows(), 200);
        assert_eq!(a.n_dims(), 6);
        assert_eq!(a, correlated(&c));
    }

    #[test]
    fn within_group_correlation_matches_strength_squared() {
        let c = CorrelatedConfig {
            n_rows: 20_000,
            n_dims: 4,
            group_size: 2,
            strength: 0.9,
            seed: 3,
        };
        let ds = correlated(&c);
        let r01 = pearson(&ds.column(0), &ds.column(1));
        let r23 = pearson(&ds.column(2), &ds.column(3));
        let want = 0.81;
        assert!((r01 - want).abs() < 0.03, "r01 = {r01}");
        assert!((r23 - want).abs() < 0.03, "r23 = {r23}");
    }

    #[test]
    fn across_group_correlation_is_near_zero() {
        let c = CorrelatedConfig {
            n_rows: 20_000,
            n_dims: 4,
            group_size: 2,
            strength: 0.9,
            seed: 4,
        };
        let ds = correlated(&c);
        let r02 = pearson(&ds.column(0), &ds.column(2));
        let r13 = pearson(&ds.column(1), &ds.column(3));
        assert!(r02.abs() < 0.03, "r02 = {r02}");
        assert!(r13.abs() < 0.03, "r13 = {r13}");
    }

    #[test]
    fn marginals_are_standard_normal() {
        let c = CorrelatedConfig {
            n_rows: 20_000,
            n_dims: 2,
            group_size: 2,
            strength: 0.95,
            seed: 5,
        };
        let ds = correlated(&c);
        for j in 0..2 {
            let col = ds.column(j);
            let acc = hdoutlier_stats::summary::Accumulator::from_iter(col.iter().copied());
            assert!(acc.mean().unwrap().abs() < 0.03);
            assert!((acc.sd().unwrap() - 1.0).abs() < 0.03);
        }
    }

    #[test]
    fn strength_zero_is_independent() {
        let c = CorrelatedConfig {
            n_rows: 20_000,
            n_dims: 2,
            group_size: 2,
            strength: 0.0,
            seed: 6,
        };
        let ds = correlated(&c);
        let r = pearson(&ds.column(0), &ds.column(1));
        assert!(r.abs() < 0.03, "r = {r}");
    }

    #[test]
    fn group_size_one_is_independent() {
        let c = CorrelatedConfig {
            n_rows: 20_000,
            n_dims: 2,
            group_size: 1,
            strength: 0.95,
            seed: 7,
        };
        let ds = correlated(&c);
        let r = pearson(&ds.column(0), &ds.column(1));
        assert!(r.abs() < 0.03, "r = {r}");
    }

    #[test]
    #[should_panic(expected = "strength")]
    fn invalid_strength_panics() {
        correlated(&CorrelatedConfig {
            strength: 1.5,
            ..CorrelatedConfig::default()
        });
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }
}
