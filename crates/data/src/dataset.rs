//! The in-memory dataset representation.
//!
//! A [`Dataset`] is a dense row-major matrix of `f64` with:
//!
//! - **missing values** encoded as NaN (the paper's §1.2 observes that
//!   sparse projections can be mined even from records with missing
//!   attributes, so missingness must survive all the way to the grid);
//! - **column names** for interpretable outlier reports, and
//! - optional **class labels**, used only by evaluation (the detector itself
//!   is unsupervised).

use std::fmt;

/// Errors produced while constructing or transforming datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// The value buffer length is not `n_rows * n_dims`.
    ShapeMismatch {
        /// Expected buffer length.
        expected: usize,
        /// Actual buffer length.
        actual: usize,
    },
    /// Column-name count differs from `n_dims`.
    NameCountMismatch {
        /// Number of dimensions in the data.
        n_dims: usize,
        /// Number of names supplied.
        n_names: usize,
    },
    /// Label count differs from `n_rows`.
    LabelCountMismatch {
        /// Number of rows in the data.
        n_rows: usize,
        /// Number of labels supplied.
        n_labels: usize,
    },
    /// A referenced column does not exist.
    NoSuchColumn(String),
    /// A referenced column index is out of bounds.
    ColumnIndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of dimensions in the data.
        n_dims: usize,
    },
    /// A referenced row index is out of bounds.
    RowIndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of rows in the data.
        n_rows: usize,
    },
    /// The dataset has zero rows or zero columns where data was required.
    Empty,
    /// Malformed input while parsing (CSV etc.); the string carries context.
    Parse(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ShapeMismatch { expected, actual } => {
                write!(f, "value buffer has {actual} entries, expected {expected}")
            }
            DataError::NameCountMismatch { n_dims, n_names } => {
                write!(f, "{n_names} column names for {n_dims} dimensions")
            }
            DataError::LabelCountMismatch { n_rows, n_labels } => {
                write!(f, "{n_labels} labels for {n_rows} rows")
            }
            DataError::NoSuchColumn(name) => write!(f, "no column named {name:?}"),
            DataError::ColumnIndexOutOfBounds { index, n_dims } => {
                write!(
                    f,
                    "column index {index} out of bounds for {n_dims} dimensions"
                )
            }
            DataError::RowIndexOutOfBounds { index, n_rows } => {
                write!(f, "row index {index} out of bounds for {n_rows} rows")
            }
            DataError::Empty => write!(f, "dataset is empty"),
            DataError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

/// A dense, row-major numeric dataset.
///
/// ```
/// use hdoutlier_data::Dataset;
/// let ds = Dataset::from_rows(vec![vec![1.0, 2.0], vec![3.0, f64::NAN]]).unwrap();
/// assert_eq!(ds.n_rows(), 2);
/// assert_eq!(ds.n_dims(), 2);
/// assert_eq!(ds.value(0, 1), 2.0);
/// assert!(ds.is_missing(1, 1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    values: Vec<f64>,
    n_rows: usize,
    n_dims: usize,
    names: Vec<String>,
    labels: Option<Vec<u32>>,
}

impl Dataset {
    /// Builds a dataset from a row-major buffer.
    pub fn new(values: Vec<f64>, n_rows: usize, n_dims: usize) -> Result<Self, DataError> {
        if values.len() != n_rows * n_dims {
            return Err(DataError::ShapeMismatch {
                expected: n_rows * n_dims,
                actual: values.len(),
            });
        }
        Ok(Self {
            values,
            n_rows,
            n_dims,
            names: (0..n_dims).map(|j| format!("x{j}")).collect(),
            labels: None,
        })
    }

    /// Builds a dataset from per-row vectors; all rows must share a length.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, DataError> {
        let n_rows = rows.len();
        let n_dims = rows.first().map(Vec::len).unwrap_or(0);
        if n_rows == 0 || n_dims == 0 {
            return Err(DataError::Empty);
        }
        let mut values = Vec::with_capacity(n_rows * n_dims);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n_dims {
                return Err(DataError::Parse(format!(
                    "row {i} has {} values, expected {n_dims}",
                    row.len()
                )));
            }
            values.extend_from_slice(row);
        }
        Self::new(values, n_rows, n_dims)
    }

    /// Starts a builder for datasets with names/labels.
    pub fn builder() -> DatasetBuilder {
        DatasetBuilder::default()
    }

    /// Number of records.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes.
    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    /// The value at `(row, dim)`; NaN means missing.
    ///
    /// # Panics
    /// Panics if either index is out of bounds (debug-friendly hot path; use
    /// [`Dataset::try_value`] for checked access).
    #[inline]
    pub fn value(&self, row: usize, dim: usize) -> f64 {
        debug_assert!(row < self.n_rows && dim < self.n_dims);
        self.values[row * self.n_dims + dim]
    }

    /// Checked access to the value at `(row, dim)`.
    pub fn try_value(&self, row: usize, dim: usize) -> Result<f64, DataError> {
        if row >= self.n_rows {
            return Err(DataError::RowIndexOutOfBounds {
                index: row,
                n_rows: self.n_rows,
            });
        }
        if dim >= self.n_dims {
            return Err(DataError::ColumnIndexOutOfBounds {
                index: dim,
                n_dims: self.n_dims,
            });
        }
        Ok(self.value(row, dim))
    }

    /// Whether `(row, dim)` is a missing entry.
    #[inline]
    pub fn is_missing(&self, row: usize, dim: usize) -> bool {
        self.value(row, dim).is_nan()
    }

    /// The `row`-th record as a slice.
    pub fn row(&self, row: usize) -> &[f64] {
        &self.values[row * self.n_dims..(row + 1) * self.n_dims]
    }

    /// Iterator over all rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.values.chunks_exact(self.n_dims)
    }

    /// Copies column `dim` into a vector (row-major storage makes columns
    /// strided; callers that need repeated column access should copy once).
    pub fn column(&self, dim: usize) -> Vec<f64> {
        (0..self.n_rows).map(|i| self.value(i, dim)).collect()
    }

    /// Column names, always `n_dims` long.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Name of column `dim`.
    pub fn name(&self, dim: usize) -> &str {
        &self.names[dim]
    }

    /// Index of the column with the given name.
    pub fn column_index(&self, name: &str) -> Result<usize, DataError> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| DataError::NoSuchColumn(name.to_string()))
    }

    /// Class labels, if attached (evaluation only).
    pub fn labels(&self) -> Option<&[u32]> {
        self.labels.as_deref()
    }

    /// Replaces the column names.
    pub fn set_names<S: Into<String>>(&mut self, names: Vec<S>) -> Result<(), DataError> {
        if names.len() != self.n_dims {
            return Err(DataError::NameCountMismatch {
                n_dims: self.n_dims,
                n_names: names.len(),
            });
        }
        self.names = names.into_iter().map(Into::into).collect();
        Ok(())
    }

    /// Attaches class labels.
    pub fn set_labels(&mut self, labels: Vec<u32>) -> Result<(), DataError> {
        if labels.len() != self.n_rows {
            return Err(DataError::LabelCountMismatch {
                n_rows: self.n_rows,
                n_labels: labels.len(),
            });
        }
        self.labels = Some(labels);
        Ok(())
    }

    /// Total number of missing entries.
    pub fn missing_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_nan()).count()
    }

    /// A new dataset containing only the given columns (in the given order).
    /// Labels are carried over; names follow the selection.
    pub fn select_columns(&self, dims: &[usize]) -> Result<Self, DataError> {
        if dims.is_empty() {
            return Err(DataError::Empty);
        }
        for &d in dims {
            if d >= self.n_dims {
                return Err(DataError::ColumnIndexOutOfBounds {
                    index: d,
                    n_dims: self.n_dims,
                });
            }
        }
        let mut values = Vec::with_capacity(self.n_rows * dims.len());
        for i in 0..self.n_rows {
            for &d in dims {
                values.push(self.value(i, d));
            }
        }
        let mut out = Self::new(values, self.n_rows, dims.len())?;
        out.names = dims.iter().map(|&d| self.names[d].clone()).collect();
        out.labels = self.labels.clone();
        Ok(out)
    }

    /// A new dataset containing only the given rows (in the given order).
    pub fn select_rows(&self, rows: &[usize]) -> Result<Self, DataError> {
        if rows.is_empty() {
            return Err(DataError::Empty);
        }
        for &r in rows {
            if r >= self.n_rows {
                return Err(DataError::RowIndexOutOfBounds {
                    index: r,
                    n_rows: self.n_rows,
                });
            }
        }
        let mut values = Vec::with_capacity(rows.len() * self.n_dims);
        for &r in rows {
            values.extend_from_slice(self.row(r));
        }
        let mut out = Self::new(values, rows.len(), self.n_dims)?;
        out.names = self.names.clone();
        out.labels = self
            .labels
            .as_ref()
            .map(|l| rows.iter().map(|&r| l[r]).collect());
        Ok(out)
    }

    /// Appends another dataset's rows; shapes and names must match.
    pub fn append(&mut self, other: &Dataset) -> Result<(), DataError> {
        if other.n_dims != self.n_dims {
            return Err(DataError::ShapeMismatch {
                expected: self.n_dims,
                actual: other.n_dims,
            });
        }
        self.values.extend_from_slice(&other.values);
        match (&mut self.labels, &other.labels) {
            (Some(mine), Some(theirs)) => mine.extend_from_slice(theirs),
            (None, None) => {}
            // Mixing labeled and unlabeled data drops labels rather than
            // inventing them.
            _ => self.labels = None,
        }
        self.n_rows += other.n_rows;
        Ok(())
    }

    /// Consumes the dataset, returning the raw row-major buffer.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}

/// Builder for [`Dataset`] with names and labels.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    rows: Vec<Vec<f64>>,
    names: Option<Vec<String>>,
    labels: Option<Vec<u32>>,
}

impl DatasetBuilder {
    /// Adds one record.
    pub fn row(mut self, row: Vec<f64>) -> Self {
        self.rows.push(row);
        self
    }

    /// Adds many records.
    pub fn rows<I: IntoIterator<Item = Vec<f64>>>(mut self, rows: I) -> Self {
        self.rows.extend(rows);
        self
    }

    /// Sets column names.
    pub fn names<S: Into<String>, I: IntoIterator<Item = S>>(mut self, names: I) -> Self {
        self.names = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Sets class labels.
    pub fn labels<I: IntoIterator<Item = u32>>(mut self, labels: I) -> Self {
        self.labels = Some(labels.into_iter().collect());
        self
    }

    /// Validates and builds.
    pub fn build(self) -> Result<Dataset, DataError> {
        let mut ds = Dataset::from_rows(self.rows)?;
        if let Some(names) = self.names {
            ds.set_names(names)?;
        }
        if let Some(labels) = self.labels {
            ds.set_labels(labels)?;
        }
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::builder()
            .row(vec![1.0, 10.0, 100.0])
            .row(vec![2.0, 20.0, 200.0])
            .row(vec![3.0, f64::NAN, 300.0])
            .row(vec![4.0, 40.0, 400.0])
            .names(["a", "b", "c"])
            .labels([0, 0, 1, 2])
            .build()
            .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let ds = sample();
        assert_eq!(ds.n_rows(), 4);
        assert_eq!(ds.n_dims(), 3);
        assert_eq!(ds.value(1, 2), 200.0);
        let row = ds.row(2);
        assert_eq!(row[0], 3.0);
        assert!(row[1].is_nan());
        assert_eq!(row[2], 300.0);
        assert!(ds.is_missing(2, 1));
        assert!(!ds.is_missing(2, 0));
        assert_eq!(ds.missing_count(), 1);
        assert_eq!(ds.column(0), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ds.name(1), "b");
        assert_eq!(ds.column_index("c"), Ok(2));
        assert!(ds.column_index("zz").is_err());
        assert_eq!(ds.labels(), Some(&[0, 0, 1, 2][..]));
    }

    #[test]
    fn shape_validation() {
        assert!(matches!(
            Dataset::new(vec![1.0; 5], 2, 3),
            Err(DataError::ShapeMismatch {
                expected: 6,
                actual: 5
            })
        ));
        assert!(matches!(Dataset::from_rows(vec![]), Err(DataError::Empty)));
        assert!(matches!(
            Dataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]]),
            Err(DataError::Parse(_))
        ));
    }

    #[test]
    fn name_and_label_validation() {
        let mut ds = Dataset::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        assert!(ds.set_names(vec!["only-one"]).is_err());
        assert!(ds.set_names(vec!["p", "q"]).is_ok());
        assert!(ds.set_labels(vec![1, 2]).is_err());
        assert!(ds.set_labels(vec![7]).is_ok());
    }

    #[test]
    fn try_value_bounds() {
        let ds = sample();
        assert_eq!(ds.try_value(0, 0), Ok(1.0));
        assert!(matches!(
            ds.try_value(9, 0),
            Err(DataError::RowIndexOutOfBounds { .. })
        ));
        assert!(matches!(
            ds.try_value(0, 9),
            Err(DataError::ColumnIndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn select_columns_reorders_and_keeps_labels() {
        let ds = sample();
        let sub = ds.select_columns(&[2, 0]).unwrap();
        assert_eq!(sub.n_dims(), 2);
        assert_eq!(sub.names(), &["c".to_string(), "a".to_string()]);
        assert_eq!(sub.value(1, 0), 200.0);
        assert_eq!(sub.value(1, 1), 2.0);
        assert_eq!(sub.labels(), Some(&[0, 0, 1, 2][..]));
        assert!(ds.select_columns(&[]).is_err());
        assert!(ds.select_columns(&[5]).is_err());
    }

    #[test]
    fn select_rows_subsets_labels() {
        let ds = sample();
        let sub = ds.select_rows(&[3, 0]).unwrap();
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.value(0, 0), 4.0);
        assert_eq!(sub.labels(), Some(&[2, 0][..]));
        assert!(ds.select_rows(&[]).is_err());
        assert!(ds.select_rows(&[99]).is_err());
    }

    #[test]
    fn append_rows() {
        let mut a = sample();
        let b = sample();
        a.append(&b).unwrap();
        assert_eq!(a.n_rows(), 8);
        assert_eq!(a.labels().unwrap().len(), 8);
        let c = Dataset::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        assert!(a.append(&c).is_err()); // dim mismatch
    }

    #[test]
    fn append_mixed_labels_drops_labels() {
        let mut a = sample();
        let mut b = sample();
        b.labels = None;
        a.append(&b).unwrap();
        assert!(a.labels().is_none());
    }

    #[test]
    fn rows_iterator_covers_all() {
        let ds = sample();
        assert_eq!(ds.rows().count(), 4);
        let first = ds.rows().next().unwrap();
        assert_eq!(first, &[1.0, 10.0, 100.0]);
    }

    #[test]
    fn default_names_are_generated() {
        let ds = Dataset::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        assert_eq!(ds.names(), &["x0".to_string(), "x1".to_string()]);
    }

    #[test]
    fn error_display_strings() {
        let e = DataError::NoSuchColumn("q".into());
        assert!(e.to_string().contains("q"));
        let e = DataError::ShapeMismatch {
            expected: 6,
            actual: 5,
        };
        assert!(e.to_string().contains('6'));
    }
}
