//! Property-based tests for the data substrate.

use hdoutlier_data::csv::{parse_records, read_str, write_string, CsvOptions};
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized, MISSING_CELL};
use hdoutlier_data::generators::{correlated, uniform, CorrelatedConfig};
use hdoutlier_data::Dataset;
use proptest::prelude::*;

/// Strategy for small datasets with occasional NaN entries.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (1usize..40, 1usize..8).prop_flat_map(|(n, d)| {
        proptest::collection::vec(
            prop_oneof![
                9 => (-1e4f64..1e4).prop_map(Some),
                1 => Just(None),
            ],
            n * d,
        )
        .prop_map(move |vals| {
            let values: Vec<f64> = vals.into_iter().map(|v| v.unwrap_or(f64::NAN)).collect();
            Dataset::new(values, n, d).unwrap()
        })
    })
}

proptest! {
    #[test]
    fn equi_depth_balance_within_one(ds in dataset_strategy(), phi in 1u32..12) {
        let disc = Discretized::new(&ds, phi, DiscretizeStrategy::EquiDepth).unwrap();
        for dim in 0..ds.n_dims() {
            let present = disc.present_count(dim);
            let counts: Vec<usize> = (0..phi as u16)
                .map(|r| disc.grid_range(dim, r).count)
                .collect();
            prop_assert_eq!(counts.iter().sum::<usize>(), present);
            if present >= phi as usize {
                let min = counts.iter().min().unwrap();
                let max = counts.iter().max().unwrap();
                prop_assert!(max - min <= 1, "dim {dim} counts {:?}", counts);
            }
        }
    }

    #[test]
    fn discretize_preserves_missingness(ds in dataset_strategy(), phi in 1u32..8) {
        for strategy in [DiscretizeStrategy::EquiDepth, DiscretizeStrategy::EquiWidth] {
            let disc = Discretized::new(&ds, phi, strategy).unwrap();
            for i in 0..ds.n_rows() {
                for j in 0..ds.n_dims() {
                    prop_assert_eq!(ds.is_missing(i, j), disc.cell(i, j) == MISSING_CELL);
                    if !ds.is_missing(i, j) {
                        prop_assert!(disc.cell(i, j) < phi as u16);
                    }
                }
            }
        }
    }

    #[test]
    fn equi_depth_order_preserving(values in proptest::collection::vec(-1e3f64..1e3, 2..60), phi in 1u32..8) {
        let n = values.len();
        let ds = Dataset::new(values.clone(), n, 1).unwrap();
        let disc = Discretized::new(&ds, phi, DiscretizeStrategy::EquiDepth).unwrap();
        for a in 0..n {
            for b in 0..n {
                if values[a] < values[b] {
                    prop_assert!(disc.cell(a, 0) <= disc.cell(b, 0));
                }
            }
        }
    }

    #[test]
    fn equi_width_cells_respect_boundaries(values in proptest::collection::vec(-1e3f64..1e3, 2..60), phi in 1u32..8) {
        let n = values.len();
        let ds = Dataset::new(values.clone(), n, 1).unwrap();
        let disc = Discretized::new(&ds, phi, DiscretizeStrategy::EquiWidth).unwrap();
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let width = (hi - lo) / phi as f64;
        if width > 0.0 {
            for (i, &v) in values.iter().enumerate() {
                let cell = disc.cell(i, 0) as f64;
                prop_assert!(v >= lo + cell * width - 1e-9);
                prop_assert!(v <= lo + (cell + 1.0) * width + 1e-9);
            }
        }
    }

    #[test]
    fn csv_round_trip(ds in dataset_strategy()) {
        let text = write_string(&ds);
        let back = read_str(&text, &CsvOptions::default()).unwrap();
        prop_assert_eq!(back.n_rows(), ds.n_rows());
        prop_assert_eq!(back.n_dims(), ds.n_dims());
        for i in 0..ds.n_rows() {
            for j in 0..ds.n_dims() {
                let a = ds.value(i, j);
                let b = back.value(i, j);
                prop_assert!(
                    (a.is_nan() && b.is_nan()) || a == b,
                    "({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn csv_parse_field_counts(fields in proptest::collection::vec("[a-z0-9 ]{0,6}", 1..6), n_records in 1usize..5) {
        // Build n_records identical records; parser must return the same split.
        let line = fields.join(",");
        let text = (0..n_records).map(|_| line.clone()).collect::<Vec<_>>().join("\n");
        // Skip inputs that collapse to a blank document (all-empty single field).
        let recs = parse_records(&text, ',').unwrap();
        if fields.iter().all(|f| f.is_empty()) && fields.len() == 1 {
            prop_assert!(recs.is_empty());
        } else {
            prop_assert_eq!(recs.len(), n_records);
            for r in &recs {
                prop_assert_eq!(r.len(), fields.len());
            }
        }
    }

    #[test]
    fn select_roundtrips(ds in dataset_strategy()) {
        let all_cols: Vec<usize> = (0..ds.n_dims()).collect();
        let same = ds.select_columns(&all_cols).unwrap();
        prop_assert_eq!(same.n_dims(), ds.n_dims());
        let all_rows: Vec<usize> = (0..ds.n_rows()).collect();
        let same = ds.select_rows(&all_rows).unwrap();
        prop_assert_eq!(same.n_rows(), ds.n_rows());
    }

    #[test]
    fn generators_deterministic(seed in 0u64..1000, n in 1usize..50, d in 1usize..6) {
        prop_assert_eq!(uniform(n, d, seed), uniform(n, d, seed));
        let c = CorrelatedConfig { n_rows: n, n_dims: d, group_size: 2, strength: 0.9, seed };
        prop_assert_eq!(correlated(&c), correlated(&c));
    }
}
