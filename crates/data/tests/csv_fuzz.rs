//! Robustness tests: the CSV parser must never panic and must uphold basic
//! invariants on arbitrary byte soup and on adversarially quoted inputs.

use hdoutlier_data::csv::{parse_records, read_str, write_string, CsvOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in ".{0,300}") {
        // Any outcome is fine; panicking is not.
        let _ = parse_records(&text, ',');
        let _ = read_str(&text, &CsvOptions::default());
    }

    #[test]
    fn parser_never_panics_on_quote_heavy_input(
        parts in proptest::collection::vec("[\",\\n\\ra-z]{0,8}", 0..20),
    ) {
        let text = parts.concat();
        let _ = parse_records(&text, ',');
    }

    #[test]
    fn well_formed_unquoted_input_always_parses(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-z0-9._-]{1,6}", 3),
            1..20,
        ),
    ) {
        let text: String = rows
            .iter()
            .map(|r| r.join(","))
            .collect::<Vec<_>>()
            .join("\n");
        let records = parse_records(&text, ',').unwrap();
        prop_assert_eq!(records.len(), rows.len());
        for (got, want) in records.iter().zip(&rows) {
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn quoted_fields_round_trip(
        fields in proptest::collection::vec(".{0,12}", 1..6),
    ) {
        // Quote every field manually (escaping quotes), parse back.
        let line: String = fields
            .iter()
            .map(|f| format!("\"{}\"", f.replace('"', "\"\"")))
            .collect::<Vec<_>>()
            .join(",");
        let records = parse_records(&line, ',').unwrap();
        // Fields containing \r\n or \r are normalized by the reader's
        // newline handling inside quotes? No: quoted content is verbatim.
        prop_assert_eq!(records.len(), 1);
        prop_assert_eq!(&records[0], &fields);
    }

    #[test]
    fn writer_output_always_reparses(
        values in proptest::collection::vec(
            prop_oneof![4 => (-1e9f64..1e9).prop_map(Some), 1 => Just(None)],
            1..60,
        ),
        n_dims in 1usize..6,
    ) {
        let n_rows = values.len() / n_dims;
        prop_assume!(n_rows >= 1);
        let buf: Vec<f64> = values[..n_rows * n_dims]
            .iter()
            .map(|v| v.unwrap_or(f64::NAN))
            .collect();
        let ds = hdoutlier_data::Dataset::new(buf, n_rows, n_dims).unwrap();
        let text = write_string(&ds);
        let back = read_str(&text, &CsvOptions::default()).unwrap();
        prop_assert_eq!(back.n_rows(), n_rows);
        prop_assert_eq!(back.n_dims(), n_dims);
    }
}
