//! Re-export of the workspace JSON machinery.
//!
//! The writer/parser used to live here; it moved to the `hdoutlier-json`
//! crate so non-CLI layers (streaming checkpoints in `hdoutlier-stream`,
//! bench baseline comparison) can share it. Existing `crate::json::{Json,
//! FieldChain, JsonError}` paths keep working through this re-export.

pub use hdoutlier_json::{FieldChain, Json, JsonError};
