#![warn(missing_docs)]

//! Library side of the `hdoutlier` command-line tool.
//!
//! Everything testable lives here; `main.rs` is a thin shell. Submodules:
//!
//! - [`args`]: a small, dependency-free command-line parser (flags with
//!   values, `--flag=value` and `--flag value` forms, positional arguments,
//!   typed getters with error messages);
//! - [`json`]: a minimal JSON value with writer and parser (the workspace
//!   builds hermetically with no external dependencies; reports and model
//!   files are simple enough that escaping + nesting is all that is needed);
//! - [`commands`]: the `detect`, `score`, `stream`, `explain`, `advise` and
//!   `baseline` subcommands, returning their output as a string so tests
//!   can assert on it;
//! - [`obs_setup`]: the shared `--log-level` / `--log-json` /
//!   `--metrics-out` observability flags and the metrics snapshot helpers.

pub mod args;
pub mod commands;
pub mod json;
pub mod model_io;
pub mod obs_setup;

/// Exit codes used by the binary.
pub mod exit {
    /// Success.
    pub const OK: i32 = 0;
    /// Bad usage (unknown flag, missing argument…).
    pub const USAGE: i32 = 2;
    /// Runtime failure (unreadable file, invalid data…).
    pub const RUNTIME: i32 = 1;
}

/// Top-level usage text.
pub const USAGE: &str = "\
hdoutlier — subspace outlier detection (Aggarwal & Yu, SIGMOD 2001)

USAGE:
    hdoutlier <COMMAND> [OPTIONS]

COMMANDS:
    detect    find outliers in a CSV file via sparse-projection search
    score     score records against a model saved by `detect --save-model`
    stream    score CSV records from stdin one by one, emitting NDJSON verdicts
    explain   rank every subspace view of one record by abnormality
    advise    recommend phi and k for a dataset size (the paper's Eq. 2)
    baseline  run a distance-based comparator (knn | lof | knorr-ng)
    help      show this message

Run `hdoutlier <COMMAND> --help` for per-command options.
";

/// Dispatches a full argument vector (without argv\[0\]); returns
/// `(exit_code, output)`. Errors are rendered into the output so the binary
/// stays a one-liner and tests can assert on messages.
pub fn run(argv: &[String]) -> (i32, String) {
    let Some(command) = argv.first() else {
        return (exit::USAGE, USAGE.to_string());
    };
    let rest = &argv[1..];
    match command.as_str() {
        "detect" => commands::detect::run(rest),
        "score" => commands::score::run(rest),
        "stream" => commands::stream::run(rest),
        "explain" => commands::explain::run(rest),
        "advise" => commands::advise::run(rest),
        "baseline" => commands::baseline::run(rest),
        "help" | "--help" | "-h" => (exit::OK, USAGE.to_string()),
        other => (exit::USAGE, format!("unknown command {other:?}\n\n{USAGE}")),
    }
}
