#![warn(missing_docs)]

//! Library side of the `hdoutlier` command-line tool.
//!
//! Everything testable lives here; `main.rs` is a thin shell. Submodules:
//!
//! - [`args`]: a small, dependency-free command-line parser (flags with
//!   values, `--flag=value` and `--flag value` forms, positional arguments,
//!   typed getters with error messages);
//! - [`json`]: re-export of the workspace `hdoutlier-json` crate — a minimal
//!   JSON value with writer and parser (the workspace builds hermetically
//!   with no external dependencies; reports, model files, and checkpoints
//!   are simple enough that escaping + nesting is all that is needed);
//! - [`commands`]: the `detect`, `score`, `stream`, `serve`, `explain`,
//!   `advise` and `baseline` subcommands, returning their output as a
//!   string so tests can assert on it;
//! - [`obs_setup`]: the shared `--log-level` / `--log-json` /
//!   `--metrics-out` observability flags and the metrics snapshot helpers.

pub mod args;
pub mod commands;
pub mod json;
pub mod model_io;
pub mod obs_setup;

/// Exit codes used by the binary.
pub mod exit {
    /// Success.
    pub const OK: i32 = 0;
    /// Bad usage (unknown flag, missing argument…).
    pub const USAGE: i32 = 2;
    /// Runtime failure (unreadable file, invalid data…).
    pub const RUNTIME: i32 = 1;
}

/// Top-level usage text.
pub const USAGE: &str = "\
hdoutlier — subspace outlier detection (Aggarwal & Yu, SIGMOD 2001)

USAGE:
    hdoutlier <COMMAND> [OPTIONS]

COMMANDS:
    detect    find outliers in a CSV file via sparse-projection search
    score     score records against a model saved by `detect --save-model`
    stream    score CSV records from stdin one by one, emitting NDJSON verdicts
    serve     host many concurrent scoring sessions over HTTP (NDJSON in/out)
    explain   rank every subspace view of one record by abnormality
    advise    recommend phi and k for a dataset size (the paper's Eq. 2)
    baseline  run a distance-based comparator (knn | lof | knorr-ng)
    scenario  run seeded end-to-end scenario packs against golden reports
    help      show this message

Run `hdoutlier <COMMAND> --help` for per-command options.
";

/// Dispatches a full argument vector (without argv\[0\]); returns
/// `(exit_code, output)`. Reports and errors are rendered into the output
/// so tests can assert on messages.
pub fn run(argv: &[String]) -> (i32, String) {
    let mut sink = Vec::new();
    let (code, err) = run_to(argv, &mut sink);
    let mut out = String::from_utf8(sink).expect("reports are valid UTF-8");
    out.push_str(&err);
    (code, out)
}

/// Dispatches with reports streamed to `sink`. The binary passes stdout, so
/// a consumer closing the pipe early (`hdoutlier ... | head`) is handled
/// gracefully mid-report instead of surfacing as a write failure. The
/// returned string carries only help or error text.
pub fn run_to(argv: &[String], sink: &mut impl std::io::Write) -> (i32, String) {
    let Some(command) = argv.first() else {
        return (exit::USAGE, USAGE.to_string());
    };
    let rest = &argv[1..];
    match command.as_str() {
        "detect" => commands::detect::run_to(rest, sink),
        "score" => emit(commands::score::run(rest), sink),
        "stream" => {
            let stdin = std::io::stdin();
            commands::stream::run_streaming(rest, stdin.lock(), sink)
        }
        "serve" => commands::serve::run(rest),
        "explain" => commands::explain::run_to(rest, sink),
        "advise" => emit(commands::advise::run(rest), sink),
        "baseline" => commands::baseline::run_to(rest, sink),
        "scenario" => commands::scenario::run_to(rest, sink),
        "help" | "--help" | "-h" => (exit::OK, USAGE.to_string()),
        other => (exit::USAGE, format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

/// Routes a fully rendered `(code, output)` result through the sink: success
/// output is a report (written with graceful broken-pipe handling), anything
/// else is help/error text for the caller to place.
fn emit(result: (i32, String), sink: &mut impl std::io::Write) -> (i32, String) {
    let (code, out) = result;
    if code != exit::OK {
        return (code, out);
    }
    match commands::emit_report(sink, &out) {
        Ok(()) => (exit::OK, String::new()),
        Err(e) => (exit::RUNTIME, e),
    }
}
