//! A small, dependency-free command-line argument parser.
//!
//! Supports `--flag value`, `--flag=value`, boolean `--flag`, and positional
//! arguments, with typed getters that produce readable error messages. This
//! is deliberately minimal: the workspace builds hermetically with no
//! external dependencies, and the CLI's needs are simple.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// Parse or lookup failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A flag not in the declared set.
    UnknownFlag(String),
    /// A value-taking flag at the end of the argument list.
    MissingValue(String),
    /// A required flag that was not supplied.
    Required(String),
    /// A value that failed to parse; `(flag, value, expected type)`.
    BadValue(String, String, &'static str),
    /// The same flag given twice.
    Duplicate(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::UnknownFlag(flag) => write!(f, "unknown option --{flag}"),
            ArgError::MissingValue(flag) => write!(f, "option --{flag} requires a value"),
            ArgError::Required(flag) => write!(f, "missing required option --{flag}"),
            ArgError::BadValue(flag, value, ty) => {
                write!(f, "--{flag}: cannot parse {value:?} as {ty}")
            }
            ArgError::Duplicate(flag) => write!(f, "option --{flag} given more than once"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Declares which flags exist and whether each takes a value.
pub struct Spec {
    value_flags: Vec<&'static str>,
    bool_flags: Vec<&'static str>,
}

impl Spec {
    /// Creates a spec from the value-taking and boolean flag names
    /// (without leading dashes).
    pub fn new(value_flags: &[&'static str], bool_flags: &[&'static str]) -> Self {
        Self {
            value_flags: value_flags.to_vec(),
            bool_flags: bool_flags.to_vec(),
        }
    }

    /// Parses an argument vector.
    pub fn parse(&self, argv: &[String]) -> Result<Parsed, ArgError> {
        let mut values: HashMap<String, String> = HashMap::new();
        let mut bools: Vec<String> = Vec::new();
        let mut positional: Vec<String> = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            if let Some(stripped) = arg.strip_prefix("--") {
                let (name, inline) = match stripped.split_once('=') {
                    Some((n, v)) => (n.to_string(), Some(v.to_string())),
                    None => (stripped.to_string(), None),
                };
                if self.bool_flags.contains(&name.as_str()) {
                    if inline.is_some() {
                        return Err(ArgError::BadValue(
                            name,
                            inline.unwrap_or_default(),
                            "flag (takes no value)",
                        ));
                    }
                    if bools.contains(&name) {
                        return Err(ArgError::Duplicate(name));
                    }
                    bools.push(name);
                } else if self.value_flags.contains(&name.as_str()) {
                    let value = match inline {
                        Some(v) => v,
                        None => {
                            i += 1;
                            argv.get(i)
                                .cloned()
                                .ok_or_else(|| ArgError::MissingValue(name.clone()))?
                        }
                    };
                    if values.insert(name.clone(), value).is_some() {
                        return Err(ArgError::Duplicate(name));
                    }
                } else {
                    return Err(ArgError::UnknownFlag(name));
                }
            } else {
                positional.push(arg.clone());
            }
            i += 1;
        }
        Ok(Parsed {
            values,
            bools,
            positional,
        })
    }
}

/// The parsed arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    values: HashMap<String, String>,
    bools: Vec<String>,
    positional: Vec<String>,
}

impl Parsed {
    /// Raw string value of a flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// Whether a boolean flag was given.
    pub fn has(&self, flag: &str) -> bool {
        self.bools.iter().any(|b| b == flag)
    }

    /// Positional arguments, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Typed optional value.
    pub fn opt<T: FromStr>(&self, flag: &str, ty: &'static str) -> Result<Option<T>, ArgError> {
        match self.get(flag) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| ArgError::BadValue(flag.to_string(), raw.to_string(), ty)),
        }
    }

    /// Typed value with a default.
    pub fn or<T: FromStr>(&self, flag: &str, ty: &'static str, default: T) -> Result<T, ArgError> {
        Ok(self.opt(flag, ty)?.unwrap_or(default))
    }

    /// Typed required value.
    pub fn required<T: FromStr>(&self, flag: &str, ty: &'static str) -> Result<T, ArgError> {
        self.opt(flag, ty)?
            .ok_or_else(|| ArgError::Required(flag.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn spec() -> Spec {
        Spec::new(&["phi", "k", "input"], &["verbose", "json"])
    }

    #[test]
    fn parses_both_value_forms_and_bools() {
        let p = spec()
            .parse(&argv(&["--phi", "5", "--k=3", "--verbose", "file.csv"]))
            .unwrap();
        assert_eq!(p.get("phi"), Some("5"));
        assert_eq!(p.get("k"), Some("3"));
        assert!(p.has("verbose"));
        assert!(!p.has("json"));
        assert_eq!(p.positional(), &["file.csv".to_string()]);
    }

    #[test]
    fn typed_getters() {
        let p = spec().parse(&argv(&["--phi", "5"])).unwrap();
        assert_eq!(p.or("phi", "integer", 3u32).unwrap(), 5);
        assert_eq!(p.or("k", "integer", 3u32).unwrap(), 3);
        assert_eq!(p.opt::<u32>("k", "integer").unwrap(), None);
        assert_eq!(p.required::<u32>("phi", "integer").unwrap(), 5);
        assert_eq!(
            p.required::<u32>("k", "integer"),
            Err(ArgError::Required("k".into()))
        );
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            spec().parse(&argv(&["--nope"])),
            Err(ArgError::UnknownFlag("nope".into()))
        );
        assert_eq!(
            spec().parse(&argv(&["--phi"])),
            Err(ArgError::MissingValue("phi".into()))
        );
        assert_eq!(
            spec().parse(&argv(&["--phi", "1", "--phi", "2"])),
            Err(ArgError::Duplicate("phi".into()))
        );
        assert_eq!(
            spec().parse(&argv(&["--verbose=yes"])),
            Err(ArgError::BadValue(
                "verbose".into(),
                "yes".into(),
                "flag (takes no value)"
            ))
        );
        assert_eq!(
            spec().parse(&argv(&["--verbose", "--verbose"])),
            Err(ArgError::Duplicate("verbose".into()))
        );
        let p = spec().parse(&argv(&["--phi", "abc"])).unwrap();
        assert!(matches!(
            p.opt::<u32>("phi", "integer"),
            Err(ArgError::BadValue(_, _, "integer"))
        ));
    }

    #[test]
    fn error_messages_are_readable() {
        assert_eq!(
            ArgError::UnknownFlag("x".into()).to_string(),
            "unknown option --x"
        );
        assert!(ArgError::BadValue("k".into(), "z".into(), "integer")
            .to_string()
            .contains("cannot parse"));
    }
}
