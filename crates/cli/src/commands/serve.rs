//! `hdoutlier serve` — host many concurrent scoring sessions over HTTP.
//!
//! The long-running sibling of `stream`: instead of one model and one stdin
//! pipe, the server holds a registry of sessions, each with its own model,
//! drift monitor, error policy, and checkpoint cadence, and scores NDJSON
//! records POSTed to `/sessions/{id}/score`. All the machinery lives in
//! [`hdoutlier_serve`]; this command parses flags, binds, prints the
//! address banner, and waits for a drain request (SIGTERM, SIGINT, or
//! `POST /shutdown`) before draining gracefully.

use super::parse_or_usage;
use crate::args::Parsed;
use crate::exit;
use crate::obs_setup::{self, ObsSession};
use hdoutlier_net::ServerConfig;
use hdoutlier_serve::{signal, ServeConfig, ServeHandle};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

/// Per-command help.
pub const HELP: &str = "\
hdoutlier serve — a multi-session network scoring server

Hosts many concurrent scoring sessions over HTTP/1.1, each the serve-side
twin of one `hdoutlier stream` process: its own model, drift monitor,
error policy, and checkpoint cadence. Records go in as NDJSON (one JSON
array per line, null = missing value); verdicts come back as the same
NDJSON lines `stream` writes, byte for byte.

ROUTES:
    POST   /sessions                create a session (JSON config body)
    GET    /sessions                list sessions
    POST   /sessions/{id}/score     NDJSON records in, NDJSON verdicts out
    GET    /sessions/{id}           session status document
    POST   /sessions/{id}/checkpoint  force an atomic checkpoint now
    DELETE /sessions/{id}           final checkpoint, then remove
    POST   /shutdown                graceful drain (same as SIGTERM)
    GET    /status                  live SLO verdict per route and session
                                    (?format=text for the human rendering)
    GET    /metrics | /healthz | /snapshot   telemetry; /healthz answers
                                    503 while the SLO verdict is unhealthy

Every response carries an X-Request-Id header: the client's value when it
sent a well-formed one, a generated id otherwise. Events, trace spans, and
quarantine lines produced while handling the request carry the same id.

USAGE:
    hdoutlier serve [OPTIONS]

OPTIONS:
    --addr <a>           listen address (default 127.0.0.1:0; port 0 picks
                         an ephemeral port, echoed on stderr)
    --checkpoint-dir <d> directory for per-session checkpoint files
                         (<id>.ckpt.json, atomic temp+rename; also enables
                         resume on session create with \"resume\": true)
    --max-sessions <n>   refuse session creates beyond <n> live sessions
                         (default 16)
    --threads <n>        pool workers for each session's batched scoring
                         (default: available cores)
    --workers <n>        HTTP connection workers (default 4)
    --queue-depth <n>    accepted connections that may wait for a worker
                         before new ones get 503 (default 32)
    --max-body-bytes <n> request body cap; larger bodies get 413
                         (default 8388608)
    --slo-error-rate <f> tolerated error fraction per SLO key inside the
                         rolling window: 5xx responses per route, bad
                         records per session (default 0.05)
    --slo-p99-ms <ms>    tolerated per-route p99 request latency in
                         milliseconds (default 250)
    --request-deadline-ms <ms>  wall-clock budget for receiving a request
                         head and, separately, its body; a client that
                         trickles bytes past it gets 408 and the connection
                         closes (defaults: head 10000, body 30000)
    --no-slo-shed        do not shed score requests while the score route's
                         SLO verdict is unhealthy (shedding is on by default)
    --shed-max-inflight <n>  also shed score requests beyond <n> executing
                         concurrently (default 0 = no cap)
    --shed-retry-after-ms <ms>  Retry-After delay stamped on shed/draining
                         503 responses (default 1000)
    --replay-cache <n>   per-session idempotency cache entries: score
                         responses remembered by client-supplied
                         X-Request-Id so retries replay instead of
                         re-scoring (default 64; 0 disables)
    --log-level <l>      emit pipeline events on stderr (error|warn|info|debug|trace)
    --log-json           render events as NDJSON instead of human-readable text
    --metrics-out <p>    enable timing metrics, snapshot to <p> after drain
    --trace-out <p>      profile spans, write Chrome trace JSON after drain
    --profile-out <p>    sample span stacks, write folded flamegraph stacks to <p>
    --profile-hz <n>     sampling rate for --profile-out (default 99)

On SIGTERM/SIGINT or POST /shutdown the server stops accepting, finishes
in-flight requests, writes a final checkpoint for every session, and exits.
";

/// Poll cadence of the drain-flag wait loop.
const WAIT_TICK: Duration = Duration::from_millis(25);

/// Runs the subcommand: binds, banners, and blocks until drained.
pub fn run(argv: &[String]) -> (i32, String) {
    run_with_ready(argv, |_| {})
}

/// Like [`run`], with a callback invoked once the listener is bound (the
/// in-process tests use it to learn the ephemeral port and drive requests;
/// the binary passes a no-op).
pub fn run_with_ready(argv: &[String], on_ready: impl FnOnce(SocketAddr) + Send) -> (i32, String) {
    let spec = obs_setup::spec_with(
        &[
            "addr",
            "checkpoint-dir",
            "max-sessions",
            "threads",
            "workers",
            "queue-depth",
            "max-body-bytes",
            "slo-error-rate",
            "slo-p99-ms",
            "request-deadline-ms",
            "shed-max-inflight",
            "shed-retry-after-ms",
            "replay-cache",
        ],
        &["no-slo-shed"],
    );
    let parsed = match parse_or_usage(&spec, argv, HELP) {
        Ok(p) => p,
        Err(out) => return out,
    };
    let mut session = match ObsSession::init(&parsed) {
        Ok(s) => s,
        Err(e) => return (exit::USAGE, format!("{e}\n\n{HELP}")),
    };
    let (code, out) = serve_under_session(&parsed, on_ready);
    match session.finish() {
        Ok(()) => (code, out),
        Err(e) if code == exit::OK => (exit::RUNTIME, e),
        Err(e) => (code, format!("{out}\n(telemetry flush also failed: {e})")),
    }
}

/// Flag validation, bind, wait loop, and drain.
fn serve_under_session(parsed: &Parsed, on_ready: impl FnOnce(SocketAddr) + Send) -> (i32, String) {
    if let Some(extra) = parsed.positional().first() {
        return (
            exit::USAGE,
            format!("unexpected argument {extra:?}\n\n{HELP}"),
        );
    }
    let mut config = ServeConfig::default();
    match parsed.opt::<usize>("max-sessions", "integer") {
        Ok(Some(0)) => {
            return (
                exit::USAGE,
                format!("--max-sessions must be >= 1\n\n{HELP}"),
            )
        }
        Ok(Some(n)) => config.max_sessions = n,
        Ok(None) => {}
        Err(e) => return super::usage_err(e, HELP),
    }
    match parsed.opt::<usize>("threads", "integer") {
        Ok(Some(0)) => return (exit::USAGE, format!("--threads must be >= 1\n\n{HELP}")),
        Ok(Some(n)) => config.threads = n,
        Ok(None) => {}
        Err(e) => return super::usage_err(e, HELP),
    }
    let mut http = ServerConfig::default();
    match parsed.opt::<usize>("workers", "integer") {
        Ok(Some(0)) => return (exit::USAGE, format!("--workers must be >= 1\n\n{HELP}")),
        Ok(Some(n)) => http.workers = n,
        Ok(None) => {}
        Err(e) => return super::usage_err(e, HELP),
    }
    match parsed.opt::<usize>("queue-depth", "integer") {
        Ok(Some(n)) => http.queue_depth = n,
        Ok(None) => {}
        Err(e) => return super::usage_err(e, HELP),
    }
    match parsed.opt::<usize>("max-body-bytes", "integer") {
        Ok(Some(0)) => {
            return (
                exit::USAGE,
                format!("--max-body-bytes must be >= 1\n\n{HELP}"),
            )
        }
        Ok(Some(n)) => http.max_body_bytes = n,
        Ok(None) => {}
        Err(e) => return super::usage_err(e, HELP),
    }
    config.http = http;
    match parsed.opt::<f64>("slo-error-rate", "number") {
        Ok(Some(f)) if (0.0..=1.0).contains(&f) => config.slo_error_rate = f,
        Ok(Some(f)) => {
            return (
                exit::USAGE,
                format!("--slo-error-rate must be in [0, 1], got {f}\n\n{HELP}"),
            )
        }
        Ok(None) => {}
        Err(e) => return super::usage_err(e, HELP),
    }
    match parsed.opt::<f64>("slo-p99-ms", "number") {
        Ok(Some(ms)) if ms > 0.0 && ms.is_finite() => config.slo_p99_ms = ms,
        Ok(Some(ms)) => {
            return (
                exit::USAGE,
                format!("--slo-p99-ms must be a positive number, got {ms}\n\n{HELP}"),
            )
        }
        Ok(None) => {}
        Err(e) => return super::usage_err(e, HELP),
    }
    match parsed.opt::<u64>("request-deadline-ms", "integer") {
        Ok(Some(0)) => {
            return (
                exit::USAGE,
                format!("--request-deadline-ms must be >= 1\n\n{HELP}"),
            )
        }
        Ok(Some(ms)) => {
            config.http.head_deadline = Duration::from_millis(ms);
            config.http.body_deadline = Duration::from_millis(ms);
        }
        Ok(None) => {}
        Err(e) => return super::usage_err(e, HELP),
    }
    config.shed_on_unhealthy = !parsed.has("no-slo-shed");
    match parsed.opt::<usize>("shed-max-inflight", "integer") {
        Ok(Some(n)) => config.shed_max_inflight = n,
        Ok(None) => {}
        Err(e) => return super::usage_err(e, HELP),
    }
    match parsed.opt::<u64>("shed-retry-after-ms", "integer") {
        Ok(Some(ms)) => {
            config.shed_retry_after = Duration::from_millis(ms);
            // The net layer's own 503s (connection budget) advertise the
            // same back-off.
            config.http.retry_after = Duration::from_millis(ms);
        }
        Ok(None) => {}
        Err(e) => return super::usage_err(e, HELP),
    }
    match parsed.opt::<usize>("replay-cache", "integer") {
        Ok(Some(n)) => config.replay_cache = n,
        Ok(None) => {}
        Err(e) => return super::usage_err(e, HELP),
    }
    if let Some(dir) = parsed.get("checkpoint-dir") {
        let dir = PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            return (
                exit::RUNTIME,
                format!("cannot create checkpoint dir {}: {e}", dir.display()),
            );
        }
        config.checkpoint_dir = Some(dir);
    }
    let addr = parsed.get("addr").unwrap_or("127.0.0.1:0");

    signal::install_termination_flag();
    let handle = match ServeHandle::bind(addr, config) {
        Ok(h) => h,
        Err(e) => return (exit::RUNTIME, format!("cannot bind {addr}: {e}")),
    };
    let local = handle.local_addr();
    // The banner is the contract with scripts and tests: the bound address
    // (port 0 resolves here) on stderr, before any request is served.
    eprintln!("serve: listening on http://{local} (drain with SIGTERM or POST /shutdown)");
    on_ready(local);

    while !signal::termination_requested() && !handle.app().shutdown_requested() {
        std::thread::sleep(WAIT_TICK);
    }

    let report = handle.drain();
    eprintln!(
        "serve: drained ({} sessions, {} checkpointed)",
        report.sessions, report.checkpointed
    );
    if report.errors.is_empty() {
        (exit::OK, String::new())
    } else {
        (
            exit::RUNTIME,
            format!("drain checkpoint failures:\n{}", report.errors.join("\n")),
        )
    }
}
