//! `hdoutlier scenario` — the seeded end-to-end scenario packs and their
//! golden-report regression gate.

use super::parse_or_usage;
use crate::exit;
use crate::obs_setup::{self, ObsSession};
use hdoutlier_scenario::golden::CheckOutcome;
use hdoutlier_scenario::{all, golden, RunConfig, Scenario};
use std::path::Path;

/// Per-command help.
pub const HELP: &str = "\
hdoutlier scenario — seeded end-to-end scenario packs with golden reports

USAGE:
    hdoutlier scenario list [--json]
    hdoutlier scenario run [NAME...]
    hdoutlier scenario check [NAME...] [--goldens-dir <dir>]
    hdoutlier scenario update-goldens [NAME...] [--goldens-dir <dir>]

ACTIONS:
    list             show every pack: name, seed, what it covers
    run              run packs and print their full (raw) JSON reports
    check            run packs, assert their ground-truth invariants, and
                     byte-compare normalized reports against the goldens;
                     a mismatch prints a unified diff and fails
    update-goldens   deliberately regenerate golden files; refuses while a
                     pack's invariants fail, so a broken behavior can never
                     be enshrined as the expectation

OPTIONS:
    --goldens-dir <dir>  golden file directory (default tests/goldens)
    --threads <n>        pool threads for the pipelines (default 1);
                         reports must be byte-identical at any value
    --json               machine-readable `list` output
";

/// Runs the subcommand, streaming reports/progress to `sink`.
pub fn run_to(argv: &[String], sink: &mut impl std::io::Write) -> (i32, String) {
    let spec = obs_setup::spec_with(&["goldens-dir", "threads"], &["json"]);
    let parsed = match parse_or_usage(&spec, argv, HELP) {
        Ok(p) => p,
        Err(out) => return out,
    };
    let mut session = match ObsSession::init(&parsed) {
        Ok(s) => s,
        Err(e) => return (exit::USAGE, format!("{e}\n\n{HELP}")),
    };
    let threads: usize = match parsed.or("threads", "integer", 1) {
        Ok(0) | Err(_) => {
            return (exit::USAGE, format!("--threads must be >= 1\n\n{HELP}"));
        }
        Ok(t) => t,
    };
    let config = RunConfig { threads };
    let goldens_dir = parsed.get("goldens-dir").unwrap_or("tests/goldens");

    let positional = parsed.positional();
    let Some(action) = positional.first() else {
        return (exit::USAGE, format!("missing action\n\n{HELP}"));
    };
    let packs = match select_packs(&positional[1..]) {
        Ok(p) => p,
        Err(msg) => return (exit::USAGE, format!("{msg}\n\n{HELP}")),
    };

    let result = match action.as_str() {
        "list" => list(&packs, parsed.has("json"), sink),
        "run" => run_packs(&packs, &config, sink),
        "check" => check_packs(&packs, &config, Path::new(goldens_dir), sink),
        "update-goldens" => update_goldens(&packs, &config, Path::new(goldens_dir), sink),
        other => return (exit::USAGE, format!("unknown action {other:?}\n\n{HELP}")),
    };
    if result.0 == exit::OK {
        if let Err(e) = session.finish() {
            return (exit::RUNTIME, e);
        }
    }
    result
}

/// Resolves pack names; no names means every pack.
fn select_packs(names: &[String]) -> Result<Vec<Scenario>, String> {
    let registry = all();
    if names.is_empty() {
        return Ok(registry);
    }
    let mut picked = Vec::with_capacity(names.len());
    for name in names {
        match registry.iter().position(|s| s.name == name.as_str()) {
            Some(_) => picked.push(hdoutlier_scenario::find(name).expect("position found above")),
            None => {
                let known: Vec<&str> = registry.iter().map(|s| s.name).collect();
                return Err(format!(
                    "unknown scenario {name:?}; known: {}",
                    known.join(", ")
                ));
            }
        }
    }
    Ok(picked)
}

fn list(packs: &[Scenario], as_json: bool, sink: &mut impl std::io::Write) -> (i32, String) {
    use crate::json::{FieldChain, Json};
    let rendered = if as_json {
        let items: Vec<Json> = packs
            .iter()
            .map(|s| {
                Json::object()
                    .field("name", s.name)
                    .field("seed", s.seed)
                    .field("summary", s.summary)
                    .unwrap()
            })
            .collect();
        Json::Array(items).pretty() + "\n"
    } else {
        let mut out = String::new();
        for s in packs {
            out.push_str(&format!(
                "{:28} seed=0x{:x}  {}\n",
                s.name, s.seed, s.summary
            ));
        }
        out
    };
    match super::emit_report(sink, &rendered) {
        Ok(()) => (exit::OK, String::new()),
        Err(e) => (exit::RUNTIME, e),
    }
}

fn run_packs(
    packs: &[Scenario],
    config: &RunConfig,
    sink: &mut impl std::io::Write,
) -> (i32, String) {
    let mut failures = Vec::new();
    for pack in packs {
        let outcome = match pack.run(config) {
            Ok(o) => o,
            Err(e) => {
                failures.push(format!("{}: {e}", pack.name));
                continue;
            }
        };
        if let Err(e) = super::emit_report(sink, &(outcome.report.pretty() + "\n")) {
            return (exit::RUNTIME, e);
        }
        for failed in outcome.failed_invariants() {
            failures.push(format!(
                "{}: invariant {} failed: {}",
                pack.name, failed.name, failed.detail
            ));
        }
    }
    finish(failures)
}

fn check_packs(
    packs: &[Scenario],
    config: &RunConfig,
    goldens_dir: &Path,
    sink: &mut impl std::io::Write,
) -> (i32, String) {
    let mut failures = Vec::new();
    for pack in packs {
        // Invariants gate first: a golden that still matches while ground
        // truth is violated means the golden itself was wrong — fail loud.
        let outcome = match pack.run(config) {
            Ok(o) => o,
            Err(e) => {
                failures.push(format!("{}: pipeline failed: {e}", pack.name));
                continue;
            }
        };
        let broken = outcome.failed_invariants();
        if !broken.is_empty() {
            for failed in &broken {
                failures.push(format!(
                    "{}: invariant {} failed: {}",
                    pack.name, failed.name, failed.detail
                ));
            }
            continue;
        }
        match golden::check(goldens_dir, pack.name, &outcome.report) {
            Ok(CheckOutcome::Match) => {
                let line = format!(
                    "{}: ok ({} invariants)\n",
                    pack.name,
                    outcome.invariants.len()
                );
                if let Err(e) = super::emit_report(sink, &line) {
                    return (exit::RUNTIME, e);
                }
            }
            Ok(CheckOutcome::Missing { path }) => {
                failures.push(format!(
                    "{}: golden {} is missing; generate it with\n    hdoutlier scenario update-goldens {}",
                    pack.name,
                    path.display(),
                    pack.name
                ));
            }
            Ok(CheckOutcome::Mismatch { path, diff }) => {
                failures.push(format!(
                    "{}: normalized report differs from golden {}\n{diff}\
                     If this change is intentional, review the diff above and regenerate with\n    \
                     hdoutlier scenario update-goldens {}\n\
                     (refused automatically unless the pack's invariants pass)",
                    pack.name,
                    path.display(),
                    pack.name
                ));
            }
            Err(e) => failures.push(format!("{}: golden I/O failed: {e}", pack.name)),
        }
    }
    finish(failures)
}

fn update_goldens(
    packs: &[Scenario],
    config: &RunConfig,
    goldens_dir: &Path,
    sink: &mut impl std::io::Write,
) -> (i32, String) {
    let mut failures = Vec::new();
    for pack in packs {
        let outcome = match pack.run(config) {
            Ok(o) => o,
            Err(e) => {
                failures.push(format!("{}: pipeline failed: {e}", pack.name));
                continue;
            }
        };
        let broken = outcome.failed_invariants();
        if !broken.is_empty() {
            for failed in &broken {
                failures.push(format!(
                    "{}: refusing to write golden while invariant {} fails: {}",
                    pack.name, failed.name, failed.detail
                ));
            }
            continue;
        }
        match golden::update(goldens_dir, pack.name, &outcome.report) {
            Ok(changed) => {
                let line = format!(
                    "{}: {}\n",
                    pack.name,
                    if changed {
                        "golden updated"
                    } else {
                        "golden unchanged"
                    }
                );
                if let Err(e) = super::emit_report(sink, &line) {
                    return (exit::RUNTIME, e);
                }
            }
            Err(e) => failures.push(format!("{}: golden write failed: {e}", pack.name)),
        }
    }
    finish(failures)
}

fn finish(failures: Vec<String>) -> (i32, String) {
    if failures.is_empty() {
        (exit::OK, String::new())
    } else {
        (exit::RUNTIME, failures.join("\n") + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_scenario::{Invariant, Outcome, ScenarioError};

    fn broken(_: &RunConfig) -> Result<Outcome, ScenarioError> {
        use crate::json::Json;
        Ok(Outcome {
            report: Json::object().field("verdict", "wrong").unwrap(),
            invariants: vec![Invariant::check("always-fails", false, "synthetic failure")],
        })
    }

    fn broken_pack() -> Scenario {
        Scenario::new("broken", "synthetic guard-test pack", 1, broken)
    }

    #[test]
    fn update_goldens_refuses_while_invariants_fail() {
        let dir = std::env::temp_dir().join(format!(
            "hdoutlier-scenario-guard-refuse-{}",
            std::process::id()
        ));
        let mut sink = Vec::new();
        let (code, err) = update_goldens(&[broken_pack()], &RunConfig::default(), &dir, &mut sink);
        assert_eq!(code, exit::RUNTIME);
        assert!(err.contains("refusing to write golden"), "{err}");
        assert!(err.contains("always-fails"), "{err}");
        assert!(!dir.join("broken.json").exists());
    }

    #[test]
    fn check_fails_on_broken_invariants_even_when_golden_matches() {
        // Enshrine the broken report as a byte-perfect golden, then check:
        // the invariant gate must still fail the pack.
        let dir = std::env::temp_dir().join(format!(
            "hdoutlier-scenario-guard-check-{}",
            std::process::id()
        ));
        let outcome = broken(&RunConfig::default()).unwrap();
        golden::update(&dir, "broken", &outcome.report).unwrap();
        let mut sink = Vec::new();
        let (code, err) = check_packs(&[broken_pack()], &RunConfig::default(), &dir, &mut sink);
        assert_eq!(code, exit::RUNTIME);
        assert!(err.contains("invariant always-fails failed"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
