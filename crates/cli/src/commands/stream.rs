//! `hdoutlier stream` — score CSV records arriving on stdin, one NDJSON
//! verdict per record, using a model saved by `detect --save-model`.

use super::parse_or_usage;
use crate::exit;
use crate::json::{FieldChain, Json, JsonError};
use crate::model_io;
use crate::obs_setup::{self, ObsSession};
use hdoutlier_obs as obs;
use hdoutlier_stream::{DriftReport, OnlineScorer, Verdict};
use std::io::{BufRead, Write};

/// Per-command help.
pub const HELP: &str = "\
hdoutlier stream — score records from stdin as they arrive

Reads CSV rows from stdin (same column order the model was fitted on) and
writes one NDJSON verdict per record to stdout. Every --drift-every records
a chi-square drift check of the arriving distribution against the trained
equi-depth grid is run and attached to that record's verdict; a drifted
dimension means the grid has gone stale and the model should be re-fit.

USAGE:
    hdoutlier stream --model <model.json> [OPTIONS] < records.csv

OPTIONS:
    --model <path>       model file (required)
    --delimiter <c>      field separator (default ',')
    --no-header          first line is data, not column names
    --outliers-only      emit verdicts only for flagged records
    --drift-alpha <a>    drift-test significance level (default 0.01)
    --drift-every <n>    records between drift checks (default 512)
    --log-level <l>      emit pipeline events on stderr (error|warn|info|debug|trace)
    --log-json           render events as NDJSON instead of human-readable text
    --metrics-out <p>    enable per-record latency metrics, snapshot to <p> at EOF
    --trace-out <p>      profile spans, write Chrome trace-event JSON to <p> at EOF
    --serve-metrics <a>  serve /metrics, /healthz, /snapshot over HTTP on <a>
                         while the stream runs (e.g. 127.0.0.1:9184)
";

/// Runs the subcommand against real stdin, writing each verdict to stdout
/// as soon as it is computed (flushed per record, so `tail -f | hdoutlier
/// stream` pipelines see verdicts immediately rather than at EOF).
pub fn run(argv: &[String]) -> (i32, String) {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    run_streaming(argv, stdin.lock(), &mut stdout.lock())
}

/// Runs the subcommand against any line source, collecting verdicts and any
/// trailing error into one string (tests feed strings and assert on both).
pub fn run_with_input(argv: &[String], input: impl BufRead) -> (i32, String) {
    let mut sink = Vec::new();
    let (code, err) = run_streaming(argv, input, &mut sink);
    let mut out = String::from_utf8(sink).expect("verdicts are valid UTF-8");
    out.push_str(&err);
    (code, out)
}

/// The streaming core: verdicts go to `sink` record by record; the returned
/// string carries only usage/runtime error text (empty on success).
fn run_streaming(argv: &[String], input: impl BufRead, sink: &mut impl Write) -> (i32, String) {
    let spec = obs_setup::spec_with(
        &[
            "model",
            "delimiter",
            "drift-alpha",
            "drift-every",
            "serve-metrics",
        ],
        &["no-header", "outliers-only"],
    );
    let parsed = match parse_or_usage(&spec, argv, HELP) {
        Ok(p) => p,
        Err(out) => return out,
    };
    let mut session = match ObsSession::init(&parsed) {
        Ok(s) => s,
        Err(e) => return (exit::USAGE, format!("{e}\n\n{HELP}")),
    };
    if let Some(path) = parsed.positional().first() {
        return (
            exit::USAGE,
            format!("unexpected argument {path:?}: records are read from stdin\n\n{HELP}"),
        );
    }
    let Some(model_path) = parsed.get("model") else {
        return (exit::USAGE, format!("--model is required\n\n{HELP}"));
    };
    let delimiter = match parsed.get("delimiter") {
        None => ',',
        Some(d) if d.chars().count() == 1 => d.chars().next().expect("one char"),
        Some(d) => {
            return (
                exit::USAGE,
                format!("--delimiter must be a single character, got {d:?}\n\n{HELP}"),
            )
        }
    };

    let text = match std::fs::read_to_string(model_path) {
        Ok(t) => t,
        Err(e) => return (exit::RUNTIME, format!("failed to read {model_path}: {e}")),
    };
    let model = match model_io::from_json_text(&text) {
        Ok(m) => m,
        Err(e) => return (exit::RUNTIME, format!("failed to load model: {e}")),
    };
    let mut scorer = match OnlineScorer::new(model) {
        Ok(s) => s,
        Err(e) => return (exit::RUNTIME, format!("model unusable for streaming: {e}")),
    };
    match parsed.opt::<f64>("drift-alpha", "number") {
        Ok(Some(alpha)) => {
            if let Err(e) = scorer.set_drift_alpha(alpha) {
                return (exit::USAGE, format!("{e}\n\n{HELP}"));
            }
        }
        Ok(None) => {}
        Err(e) => return super::usage_err(e, HELP),
    }
    match parsed.opt::<u64>("drift-every", "integer") {
        Ok(Some(every)) => {
            if let Err(e) = scorer.set_check_every(every) {
                return (exit::USAGE, format!("{e}\n\n{HELP}"));
            }
        }
        Ok(None) => {}
        Err(e) => return super::usage_err(e, HELP),
    }

    let n_dims = scorer.model().grid().n_dims();
    let missing = hdoutlier_data::csv::CsvOptions::default().missing_markers;
    let outliers_only = parsed.has("outliers-only");
    let mut skip_header = !parsed.has("no-header");
    let mut line_no = 0usize;
    for line in input.lines() {
        line_no += 1;
        let line = match line {
            Ok(l) => l,
            Err(e) => return (exit::RUNTIME, format!("stdin read failed: {e}")),
        };
        if line.trim().is_empty() {
            continue;
        }
        if skip_header {
            skip_header = false;
            continue;
        }
        let row = match parse_row(&line, delimiter, &missing, n_dims) {
            Ok(r) => r,
            Err(msg) => return (exit::RUNTIME, format!("line {line_no}: {msg}")),
        };
        let verdict = {
            let _span = obs::span(obs::Level::Trace, "hdoutlier.cli", "score_record");
            match scorer.score_record(&row) {
                Ok(v) => v,
                Err(e) => return (exit::RUNTIME, format!("line {line_no}: {e}")),
            }
        };
        if outliers_only && !verdict.outlier && verdict.drift.is_none() {
            continue;
        }
        let rendered = match verdict_json(&verdict, &scorer) {
            Ok(j) => j.render(),
            Err(e) => return (exit::RUNTIME, format!("line {line_no}: {e}")),
        };
        if let Err(e) = writeln!(sink, "{rendered}").and_then(|()| sink.flush()) {
            // Downstream closing the pipe (`| head`) is a normal way for a
            // stream consumer to stop; anything else is a real failure.
            return if e.kind() == std::io::ErrorKind::BrokenPipe {
                match session.finish() {
                    Ok(()) => (exit::OK, String::new()),
                    Err(e) => (exit::RUNTIME, e),
                }
            } else {
                (exit::RUNTIME, format!("stdout write failed: {e}"))
            };
        }
    }
    match session.finish() {
        Ok(()) => (exit::OK, String::new()),
        Err(e) => (exit::RUNTIME, e),
    }
}

/// Splits one CSV line into `n_dims` numbers (missing markers become NaN).
fn parse_row(
    line: &str,
    delimiter: char,
    missing: &[String],
    n_dims: usize,
) -> Result<Vec<f64>, String> {
    let records = hdoutlier_data::csv::parse_records(line, delimiter)
        .map_err(|e| format!("malformed CSV: {e}"))?;
    let fields = match records.as_slice() {
        [one] => one,
        _ => return Err("expected exactly one record".to_string()),
    };
    if fields.len() != n_dims {
        return Err(format!(
            "expected {n_dims} fields (the model's dimensionality), got {}",
            fields.len()
        ));
    }
    fields
        .iter()
        .map(|f| {
            let f = f.trim();
            if missing.iter().any(|m| m == f) {
                Ok(f64::NAN)
            } else {
                f.parse::<f64>()
                    .map_err(|_| format!("cannot parse {f:?} as a number"))
            }
        })
        .collect()
}

/// One NDJSON verdict line.
fn verdict_json(verdict: &Verdict, scorer: &OnlineScorer) -> Result<Json, JsonError> {
    let projections: Vec<Json> = verdict
        .matched
        .iter()
        .map(|&i| Json::from(scorer.model().projections()[i].projection.to_string()))
        .collect();
    let mut j = Json::object()
        .field("record", verdict.index)
        .field("outlier", verdict.outlier)
        .field("score", verdict.score.map_or(Json::Null, Json::Number))
        .field("projections", Json::Array(projections))?;
    if let Some(report) = &verdict.drift {
        j = j.field("drift", drift_json(report)?)?;
    }
    Ok(j)
}

fn drift_json(report: &DriftReport) -> Result<Json, JsonError> {
    let p_values: Vec<Json> = report.p_values.iter().map(|&p| Json::Number(p)).collect();
    Json::object()
        .field("drifted", report.any_drift())
        .field(
            "drifted_dims",
            report
                .drifted_dims
                .iter()
                .map(|&d| Json::from(d))
                .collect::<Vec<_>>(),
        )
        .field("alpha", report.alpha)
        .field("p_values", Json::Array(p_values))
}

#[cfg(test)]
mod tests {
    use super::super::test_support::planted_csv;
    use crate::exit;
    use crate::json::Json;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    /// Trains a model from a planted CSV and returns (csv text, model path,
    /// planted row indices).
    fn trained(name: &str) -> (String, std::path::PathBuf, Vec<usize>) {
        let (csv, planted_rows) = planted_csv(name);
        let model_path = csv.with_extension("model.json");
        let (code, out) = crate::commands::detect::run(&argv(&[
            "--phi=4",
            "--k=2",
            "--m=6",
            "--search=brute",
            "--save-model",
            model_path.to_str().unwrap(),
            csv.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK, "{out}");
        let text = std::fs::read_to_string(&csv).unwrap();
        (text, model_path, planted_rows)
    }

    #[test]
    fn emits_one_ndjson_verdict_per_record() {
        let (csv_text, model_path, planted_rows) = trained("stream-basic");
        let n_records = csv_text.lines().count() - 1; // header
        let (code, out) = super::run_with_input(
            &argv(&["--model", model_path.to_str().unwrap()]),
            csv_text.as_bytes(),
        );
        assert_eq!(code, exit::OK, "{out}");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), n_records);
        // Every line is valid JSON with the expected shape, indexed in order.
        for (i, line) in lines.iter().enumerate() {
            let j = Json::parse(line).unwrap_or_else(|e| panic!("line {i}: {e}\n{line}"));
            assert_eq!(j.get("record").and_then(Json::as_number), Some(i as f64));
            assert!(j.get("outlier").is_some());
            assert!(j.get("score").is_some());
        }
        // The planted outliers are flagged on their own lines.
        let flagged: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains("\"outlier\":true"))
            .map(|(i, _)| i)
            .collect();
        assert!(
            planted_rows.iter().any(|r| flagged.contains(r)),
            "planted {planted_rows:?}, flagged {flagged:?}"
        );
        // Flagged records carry the matched projection string.
        let sample = lines[flagged[0]];
        assert!(sample.contains("\"projections\":[\""), "{sample}");
    }

    #[test]
    fn outliers_only_filters_inliers() {
        let (csv_text, model_path, _) = trained("stream-filter");
        let (code, all) = super::run_with_input(
            &argv(&["--model", model_path.to_str().unwrap()]),
            csv_text.as_bytes(),
        );
        assert_eq!(code, exit::OK);
        let (code, some) = super::run_with_input(
            &argv(&["--model", model_path.to_str().unwrap(), "--outliers-only"]),
            csv_text.as_bytes(),
        );
        assert_eq!(code, exit::OK);
        assert!(some.lines().count() < all.lines().count());
        assert!(some.lines().all(|l| l.contains("\"outlier\":true")));
    }

    #[test]
    fn drift_report_attaches_on_cadence() {
        let (csv_text, model_path, _) = trained("stream-drift");
        let (code, out) = super::run_with_input(
            &argv(&[
                "--model",
                model_path.to_str().unwrap(),
                "--drift-every",
                "100",
            ]),
            csv_text.as_bytes(),
        );
        assert_eq!(code, exit::OK, "{out}");
        let with_drift: Vec<usize> = out
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains("\"drift\":"))
            .map(|(i, _)| i)
            .collect();
        // 400 records, cadence 100 → checks at records 99, 199, 299, 399.
        assert_eq!(with_drift, vec![99, 199, 299, 399], "{with_drift:?}");
        // Replaying the training data: the equi-depth grid fits, no drift.
        for (_, line) in out.lines().enumerate().filter(|(i, _)| *i == 399) {
            assert!(line.contains("\"drifted\":false"), "{line}");
        }
    }

    #[test]
    fn drifted_stream_is_reported() {
        let (csv_text, model_path, _) = trained("stream-drifted");
        // Shift every value of the first column far into one tail.
        let mut lines = csv_text.lines();
        let header = lines.next().unwrap().to_string();
        let mut shifted = header + "\n";
        for line in lines {
            let mut fields: Vec<String> = line.split(',').map(str::to_string).collect();
            fields[0] = "1e6".to_string();
            shifted.push_str(&fields.join(","));
            shifted.push('\n');
        }
        let (code, out) = super::run_with_input(
            &argv(&[
                "--model",
                model_path.to_str().unwrap(),
                "--drift-every",
                "400",
            ]),
            shifted.as_bytes(),
        );
        assert_eq!(code, exit::OK, "{out}");
        let report_line = out
            .lines()
            .find(|l| l.contains("\"drift\":"))
            .expect("cadence fired");
        assert!(report_line.contains("\"drifted\":true"), "{report_line}");
        let j = Json::parse(report_line).unwrap();
        let dims = j
            .get("drift")
            .and_then(|d| d.get("drifted_dims"))
            .and_then(Json::as_array)
            .unwrap();
        assert!(
            dims.iter().any(|d| d.as_number() == Some(0.0)),
            "{report_line}"
        );
    }

    #[test]
    fn metrics_out_writes_parseable_ndjson() {
        let (csv_text, model_path, _) = trained("stream-metrics");
        let metrics_path = model_path.with_extension("metrics.ndjson");
        let (code, out) = super::run_with_input(
            &argv(&[
                "--model",
                model_path.to_str().unwrap(),
                "--metrics-out",
                metrics_path.to_str().unwrap(),
            ]),
            csv_text.as_bytes(),
        );
        assert_eq!(code, exit::OK, "{out}");
        let snapshot = std::fs::read_to_string(&metrics_path).unwrap();
        let mut names = Vec::new();
        for line in snapshot.lines() {
            let j = Json::parse(line).unwrap_or_else(|e| panic!("{e}\n{line}"));
            names.push(
                j.get("metric")
                    .and_then(Json::as_str)
                    .expect("metric name")
                    .to_string(),
            );
            assert!(j.get("type").is_some(), "{line}");
        }
        // The stream counters show up; totals are process-global, so only
        // assert presence (other in-process tests also stream records).
        assert!(
            names.iter().any(|n| n == "hdoutlier.stream.records"),
            "{names:?}"
        );
        assert!(
            names
                .iter()
                .any(|n| n == "hdoutlier.stream.record_latency_us"),
            "{names:?}"
        );
    }

    #[test]
    fn missing_values_and_no_header_are_handled() {
        let (_, model_path, _) = trained("stream-missing");
        // Two headerless records with missing markers in several columns.
        let input = "0,0,?,0,NaN,0\n1,1,1,1,1,1\n";
        let (code, out) = super::run_with_input(
            &argv(&["--model", model_path.to_str().unwrap(), "--no-header"]),
            input.as_bytes(),
        );
        assert_eq!(code, exit::OK, "{out}");
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        let (_, model_path, _) = trained("stream-errors");
        // Wrong field count.
        let (code, out) = super::run_with_input(
            &argv(&["--model", model_path.to_str().unwrap(), "--no-header"]),
            "1,2,3\n".as_bytes(),
        );
        assert_eq!(code, exit::RUNTIME);
        assert!(out.contains("line 1"), "{out}");
        assert!(out.contains("expected 6 fields"), "{out}");
        // Unparseable number.
        let (code, out) = super::run_with_input(
            &argv(&["--model", model_path.to_str().unwrap(), "--no-header"]),
            "1,2,3,4,5,banana\n".as_bytes(),
        );
        assert_eq!(code, exit::RUNTIME);
        assert!(out.contains("banana"), "{out}");
        // Usage errors.
        let (code, out) = super::run_with_input(&argv(&[]), "".as_bytes());
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("--model is required"));
        let (code, out) = super::run_with_input(
            &argv(&["--model", "x.json", "positional.csv"]),
            "".as_bytes(),
        );
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("read from stdin"), "{out}");
        let (code, _) =
            super::run_with_input(&argv(&["--model", "/nope/missing.json"]), "".as_bytes());
        assert_eq!(code, exit::RUNTIME);
        // Bad drift flags.
        let (code, out) = super::run_with_input(
            &argv(&[
                "--model",
                model_path.to_str().unwrap(),
                "--drift-alpha",
                "7",
            ]),
            "".as_bytes(),
        );
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("alpha"), "{out}");
    }
}
