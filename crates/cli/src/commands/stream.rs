//! `hdoutlier stream` — score CSV records arriving on stdin, one NDJSON
//! verdict per record, using a model saved by `detect --save-model`.
//!
//! This is the long-running deployment surface, so it carries the fault
//! tolerance the one-shot commands do not need: a bad-record policy
//! (`--on-error abort|skip|quarantine:<path>`) with a consecutive-failure
//! circuit breaker, and atomic checkpoint/resume of the scorer state
//! (`--checkpoint`/`--resume`) so a crash or redeploy does not silently
//! reset the drift statistics or the record index.

use super::parse_or_usage;
use crate::args::Parsed;
use crate::exit;
use crate::model_io;
use crate::obs_setup::{self, ObsSession};
use hdoutlier_obs as obs;
use hdoutlier_stream::ndjson::{error_json, verdict_json};
use hdoutlier_stream::{Checkpoint, OnlineScorer};
use std::io::{BufRead, Write};
use std::path::PathBuf;

/// Per-command help.
pub const HELP: &str = "\
hdoutlier stream — score records from stdin as they arrive

Reads CSV rows from stdin (same column order the model was fitted on) and
writes one NDJSON verdict per record to stdout. Every --drift-every records
a chi-square drift check of the arriving distribution against the trained
equi-depth grid is run and attached to that record's verdict; a drifted
dimension means the grid has gone stale and the model should be re-fit.

USAGE:
    hdoutlier stream --model <model.json> [OPTIONS] < records.csv

OPTIONS:
    --model <path>       model file (required)
    --delimiter <c>      field separator (default ',')
    --no-header          first line is data, not column names
    --outliers-only      emit verdicts only for flagged records
                         (error verdicts are still emitted)
    --drift-alpha <a>    drift-test significance level (default 0.01)
    --drift-every <n>    records between drift checks (default 512)
    --batch <n>          score records in bounded batches of <n>, computing
                         the model lookups on --threads pool workers; the
                         verdicts (indices, scores, drift reports) are
                         byte-identical to record-at-a-time scoring
                         (default 1 = no batching)
    --threads <n>        worker threads for --batch scoring (default:
                         available cores)
    --on-error <p>       bad-record policy: abort | skip | quarantine:<path>
                         (default abort). skip/quarantine emit an NDJSON
                         error verdict (line number + reason) and keep
                         scoring; quarantine also appends the raw line to
                         <path>
    --max-consecutive-errors <n>
                         circuit breaker: abort regardless of policy after
                         <n> consecutive bad records (default 100)
    --checkpoint <path>  persist scorer state (record index, drift
                         occupancy, totals) to <path> atomically every
                         --checkpoint-every records and at EOF
    --checkpoint-every <n>
                         records between checkpoints (default 1000)
    --resume <path>      restore state from a checkpoint before scoring; it
                         must match the model's grid fingerprint. Feed the
                         remaining records (headerless, with --no-header)
    --log-level <l>      emit pipeline events on stderr (error|warn|info|debug|trace)
    --log-json           render events as NDJSON instead of human-readable text
    --metrics-out <p>    enable per-record latency metrics, snapshot to <p> at EOF
    --trace-out <p>      profile spans, write Chrome trace-event JSON to <p> at EOF
    --profile-out <p>    sample span stacks, write folded flamegraph stacks to <p>
    --profile-hz <n>     sampling rate for --profile-out (default 99)
    --serve-metrics <a>  serve /metrics, /healthz, /snapshot over HTTP on <a>
                         while the stream runs (e.g. 127.0.0.1:9184)
";

/// Event target for the streaming command.
const TARGET: &str = "hdoutlier.stream";

/// Runs the subcommand against real stdin, writing each verdict to stdout
/// as soon as it is computed (flushed per record, so `tail -f | hdoutlier
/// stream` pipelines see verdicts immediately rather than at EOF).
pub fn run(argv: &[String]) -> (i32, String) {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    run_streaming(argv, stdin.lock(), &mut stdout.lock())
}

/// Runs the subcommand against any line source, collecting verdicts and any
/// trailing error into one string (tests feed strings and assert on both).
pub fn run_with_input(argv: &[String], input: impl BufRead) -> (i32, String) {
    let mut sink = Vec::new();
    let (code, err) = run_streaming(argv, input, &mut sink);
    let mut out = String::from_utf8(sink).expect("verdicts are valid UTF-8");
    out.push_str(&err);
    (code, out)
}

/// The streaming core: verdicts go to `sink` record by record; the returned
/// string carries only usage/runtime error text (empty on success).
///
/// Exposed to the fault-injection integration tests, which drive it with
/// readers and writers that fail at scripted points.
pub fn run_streaming(argv: &[String], input: impl BufRead, sink: &mut impl Write) -> (i32, String) {
    let spec = obs_setup::spec_with(
        &[
            "model",
            "delimiter",
            "drift-alpha",
            "drift-every",
            "batch",
            "threads",
            "on-error",
            "max-consecutive-errors",
            "checkpoint",
            "checkpoint-every",
            "resume",
            "serve-metrics",
        ],
        &["no-header", "outliers-only"],
    );
    let parsed = match parse_or_usage(&spec, argv, HELP) {
        Ok(p) => p,
        Err(out) => return out,
    };
    let mut session = match ObsSession::init(&parsed) {
        Ok(s) => s,
        Err(e) => return (exit::USAGE, format!("{e}\n\n{HELP}")),
    };
    // Everything past session init funnels through one exit point so the
    // telemetry exports (`--metrics-out`/`--trace-out`) are flushed on
    // *every* path, error exits included.
    let (code, out) = stream_under_session(&parsed, input, sink);
    match session.finish() {
        Ok(()) => (code, out),
        Err(e) if code == exit::OK => (exit::RUNTIME, e),
        // Best-effort on failure paths: report the flush failure without
        // masking the original error.
        Err(e) => (code, format!("{out}\n(telemetry flush also failed: {e})")),
    }
}

/// What to do with a record that cannot be parsed or scored.
enum ErrorPolicy {
    /// Stop the stream with a runtime error (the default).
    Abort,
    /// Emit an NDJSON error verdict and keep scoring.
    Skip,
    /// Like skip, and also append the raw line to the file at this path.
    Quarantine(String),
}

impl ErrorPolicy {
    fn action(&self) -> &'static str {
        match self {
            ErrorPolicy::Abort => "abort",
            ErrorPolicy::Skip => "skip",
            ErrorPolicy::Quarantine(_) => "quarantine",
        }
    }
}

/// The post-session-init half of the command: flag validation, model load,
/// resume, and the scoring loop.
fn stream_under_session(
    parsed: &Parsed,
    input: impl BufRead,
    sink: &mut impl Write,
) -> (i32, String) {
    if let Some(path) = parsed.positional().first() {
        return (
            exit::USAGE,
            format!("unexpected argument {path:?}: records are read from stdin\n\n{HELP}"),
        );
    }
    let Some(model_path) = parsed.get("model") else {
        return (exit::USAGE, format!("--model is required\n\n{HELP}"));
    };
    let delimiter = match parsed.get("delimiter") {
        None => ',',
        Some(d) if d.chars().count() == 1 => d.chars().next().expect("one char"),
        Some(d) => {
            return (
                exit::USAGE,
                format!("--delimiter must be a single character, got {d:?}\n\n{HELP}"),
            )
        }
    };
    let policy = match parsed.get("on-error") {
        None | Some("abort") => ErrorPolicy::Abort,
        Some("skip") => ErrorPolicy::Skip,
        Some(spec) => match spec.strip_prefix("quarantine:") {
            Some(path) if !path.is_empty() => ErrorPolicy::Quarantine(path.to_string()),
            _ => {
                return (
                    exit::USAGE,
                    format!(
                        "--on-error must be abort|skip|quarantine:<path>, got {spec:?}\n\n{HELP}"
                    ),
                )
            }
        },
    };
    let batch: usize = match parsed.or("batch", "integer", 1) {
        Ok(0) => return (exit::USAGE, format!("--batch must be >= 1\n\n{HELP}")),
        Ok(b) => b,
        Err(e) => return super::usage_err(e, HELP),
    };
    let threads: usize = match parsed.or("threads", "integer", hdoutlier_pool::default_threads()) {
        Ok(0) => return (exit::USAGE, format!("--threads must be >= 1\n\n{HELP}")),
        Ok(t) => t,
        Err(e) => return super::usage_err(e, HELP),
    };
    let max_consecutive: u64 = match parsed.opt::<u64>("max-consecutive-errors", "integer") {
        Ok(Some(0)) => {
            return (
                exit::USAGE,
                format!("--max-consecutive-errors must be positive\n\n{HELP}"),
            )
        }
        Ok(Some(n)) => n,
        Ok(None) => 100,
        Err(e) => return super::usage_err(e, HELP),
    };
    let checkpoint_path: Option<PathBuf> = parsed.get("checkpoint").map(PathBuf::from);
    let checkpoint_every: u64 = match parsed.opt::<u64>("checkpoint-every", "integer") {
        Ok(Some(0)) => {
            return (
                exit::USAGE,
                format!("--checkpoint-every must be positive\n\n{HELP}"),
            )
        }
        Ok(Some(n)) if checkpoint_path.is_none() => {
            let _ = n;
            return (
                exit::USAGE,
                format!("--checkpoint-every requires --checkpoint <path>\n\n{HELP}"),
            );
        }
        Ok(Some(n)) => n,
        Ok(None) => 1000,
        Err(e) => return super::usage_err(e, HELP),
    };

    let text = match std::fs::read_to_string(model_path) {
        Ok(t) => t,
        Err(e) => return (exit::RUNTIME, format!("failed to read {model_path}: {e}")),
    };
    let model = match model_io::from_json_text(&text) {
        Ok(m) => m,
        Err(e) => return (exit::RUNTIME, format!("failed to load model: {e}")),
    };
    let mut scorer = match OnlineScorer::new(model) {
        Ok(s) => s,
        Err(e) => return (exit::RUNTIME, format!("model unusable for streaming: {e}")),
    };

    // Resume first, then explicit drift flags: a flag given on the resumed
    // invocation deliberately overrides the checkpointed cadence/alpha.
    let mut skipped_total = 0u64;
    let mut quarantined_total = 0u64;
    if let Some(path) = parsed.get("resume") {
        let (cp, recovered) = match Checkpoint::load_with_recovery(std::path::Path::new(path)) {
            Ok(loaded) => loaded,
            Err(e) => return (exit::RUNTIME, format!("cannot resume from {path}: {e}")),
        };
        if let hdoutlier_stream::RecoveredFrom::Previous { quarantined } = &recovered {
            // The primary was corrupt or missing; say so loudly — the
            // resumed run is one checkpoint generation behind.
            match quarantined {
                Some(corrupt) => eprintln!(
                    "stream: checkpoint {path} was unreadable (quarantined to {}); \
                     resumed from its .prev generation",
                    corrupt.display()
                ),
                None => eprintln!(
                    "stream: checkpoint {path} was missing; resumed from its .prev generation"
                ),
            }
            obs::event(
                obs::Level::Warn,
                TARGET,
                "checkpoint_recovered",
                &[
                    ("from", obs::Value::Str("prev")),
                    ("quarantined", obs::Value::Bool(quarantined.is_some())),
                ],
            );
        }
        if let Err(e) = cp.restore(&mut scorer) {
            return (exit::RUNTIME, format!("cannot resume from {path}: {e}"));
        }
        skipped_total = cp.skipped;
        quarantined_total = cp.quarantined;
        obs::event(
            obs::Level::Info,
            TARGET,
            "resumed",
            &[
                ("record", obs::Value::U64(cp.records_scored)),
                ("skipped", obs::Value::U64(cp.skipped)),
                ("quarantined", obs::Value::U64(cp.quarantined)),
            ],
        );
    }
    match parsed.opt::<f64>("drift-alpha", "number") {
        Ok(Some(alpha)) => {
            if let Err(e) = scorer.set_drift_alpha(alpha) {
                return (exit::USAGE, format!("{e}\n\n{HELP}"));
            }
        }
        Ok(None) => {}
        Err(e) => return super::usage_err(e, HELP),
    }
    match parsed.opt::<u64>("drift-every", "integer") {
        Ok(Some(every)) => {
            if let Err(e) = scorer.set_check_every(every) {
                return (exit::USAGE, format!("{e}\n\n{HELP}"));
            }
        }
        Ok(None) => {}
        Err(e) => return super::usage_err(e, HELP),
    }

    // The quarantine file opens up front so a bad path fails fast, before
    // any record is consumed, and appends so restarts accumulate.
    let mut quarantine_file = match &policy {
        ErrorPolicy::Quarantine(path) => match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            Ok(f) => Some(f),
            Err(e) => {
                return (
                    exit::RUNTIME,
                    format!("cannot open quarantine file {path}: {e}"),
                )
            }
        },
        _ => None,
    };

    let registry = obs::registry();
    let skipped_ctr = registry.counter("hdoutlier.stream.skipped");
    let quarantined_ctr = registry.counter("hdoutlier.stream.quarantined");
    let checkpoints_ctr = registry.counter("hdoutlier.stream.checkpoints");

    let n_dims = scorer.model().grid().n_dims();
    let missing = hdoutlier_data::csv::CsvOptions::default().missing_markers;
    let outliers_only = parsed.has("outliers-only");
    let mut skip_header = !parsed.has("no-header");
    let mut line_no = 0usize;
    let mut consecutive_errors = 0u64;

    // One closure owns the skip/quarantine/abort decision so the three
    // failure points (read, parse, score) behave identically.
    macro_rules! bad_record {
        ($reason:expr, $raw:expr) => {{
            let reason: String = $reason;
            let raw: Option<&str> = $raw;
            consecutive_errors += 1;
            if matches!(policy, ErrorPolicy::Abort) {
                return (exit::RUNTIME, format!("line {line_no}: {reason}"));
            }
            if consecutive_errors > max_consecutive {
                return (
                    exit::RUNTIME,
                    format!(
                        "line {line_no}: {reason} ({consecutive_errors} consecutive bad \
                         records exceed --max-consecutive-errors {max_consecutive}; aborting)"
                    ),
                );
            }
            obs::event(
                obs::Level::Warn,
                TARGET,
                "record_error",
                &[
                    ("line", obs::Value::U64(line_no as u64)),
                    ("action", obs::Value::Str(policy.action())),
                ],
            );
            if let ErrorPolicy::Quarantine(path) = &policy {
                if let Some(raw) = raw {
                    let file = quarantine_file.as_mut().expect("opened above");
                    if let Err(e) = writeln!(file, "{raw}") {
                        return (
                            exit::RUNTIME,
                            format!("failed to quarantine line {line_no} to {path}: {e}"),
                        );
                    }
                }
                quarantined_ctr.inc();
                quarantined_total += 1;
            } else {
                skipped_ctr.inc();
                skipped_total += 1;
            }
            let verdict = match error_json(line_no, &reason, policy.action()) {
                Ok(j) => j.render(),
                Err(e) => return (exit::RUNTIME, format!("line {line_no}: {e}")),
            };
            match emit_line(sink, &verdict) {
                Ok(true) => continue,
                Ok(false) => break, // consumer hung up
                Err(e) => return (exit::RUNTIME, e),
            }
        }};
    }

    // Parsed records waiting for a pooled `score_batch` call (only ever
    // non-empty under `--batch <n>` with n > 1).
    let mut pending: Vec<(usize, String, Vec<f64>)> = Vec::with_capacity(batch);

    // Scores everything buffered in `pending` with one pooled call, then
    // emits the verdicts in arrival order. Evaluates to `true` when the
    // consumer hung up mid-emission. Must run before any error verdict or
    // shutdown so output order matches the record-at-a-time path exactly.
    macro_rules! flush_batch {
        () => {{
            let mut hung_up = false;
            if !pending.is_empty() {
                let rows: Vec<Vec<f64>> = pending.iter().map(|(_, _, r)| r.clone()).collect();
                let results = {
                    let _span = obs::span(obs::Level::Trace, "hdoutlier.cli", "score_batch");
                    scorer.score_batch(&rows, threads)
                };
                for ((b_line, raw, _), result) in pending.drain(..).zip(results) {
                    match result {
                        Ok(verdict) => {
                            consecutive_errors = 0;
                            if !(outliers_only && !verdict.outlier && verdict.drift.is_none()) {
                                let rendered = match verdict_json(&verdict, &scorer) {
                                    Ok(j) => j.render(),
                                    Err(e) => {
                                        return (exit::RUNTIME, format!("line {b_line}: {e}"))
                                    }
                                };
                                match emit_line(sink, &rendered) {
                                    Ok(true) => {}
                                    Ok(false) => {
                                        hung_up = true;
                                        break; // consumer hung up
                                    }
                                    Err(e) => return (exit::RUNTIME, e),
                                }
                            }
                            if let Some(path) = &checkpoint_path {
                                if scorer.records_scored() % checkpoint_every == 0 {
                                    let cp = Checkpoint::capture(
                                        &scorer,
                                        skipped_total,
                                        quarantined_total,
                                    );
                                    if let Err(e) = cp.save_atomic(path) {
                                        return (
                                            exit::RUNTIME,
                                            format!(
                                                "failed to checkpoint to {}: {e}",
                                                path.display()
                                            ),
                                        );
                                    }
                                    checkpoints_ctr.inc();
                                }
                            }
                        }
                        Err(e) => {
                            // Same policy ladder as `bad_record!`, but scoped
                            // to the buffered line and without the outer-loop
                            // `continue` (the batch keeps draining).
                            let reason = e.to_string();
                            consecutive_errors += 1;
                            if matches!(policy, ErrorPolicy::Abort) {
                                return (exit::RUNTIME, format!("line {b_line}: {reason}"));
                            }
                            if consecutive_errors > max_consecutive {
                                return (
                                    exit::RUNTIME,
                                    format!(
                                        "line {b_line}: {reason} ({consecutive_errors} \
                                         consecutive bad records exceed \
                                         --max-consecutive-errors {max_consecutive}; aborting)"
                                    ),
                                );
                            }
                            obs::event(
                                obs::Level::Warn,
                                TARGET,
                                "record_error",
                                &[
                                    ("line", obs::Value::U64(b_line as u64)),
                                    ("action", obs::Value::Str(policy.action())),
                                ],
                            );
                            if let ErrorPolicy::Quarantine(path) = &policy {
                                let file = quarantine_file.as_mut().expect("opened above");
                                if let Err(e) = writeln!(file, "{raw}") {
                                    return (
                                        exit::RUNTIME,
                                        format!(
                                            "failed to quarantine line {b_line} to {path}: {e}"
                                        ),
                                    );
                                }
                                quarantined_ctr.inc();
                                quarantined_total += 1;
                            } else {
                                skipped_ctr.inc();
                                skipped_total += 1;
                            }
                            let verdict = match error_json(b_line, &reason, policy.action()) {
                                Ok(j) => j.render(),
                                Err(e) => return (exit::RUNTIME, format!("line {b_line}: {e}")),
                            };
                            match emit_line(sink, &verdict) {
                                Ok(true) => {}
                                Ok(false) => {
                                    hung_up = true;
                                    break;
                                }
                                Err(e) => return (exit::RUNTIME, e),
                            }
                        }
                    }
                }
            }
            hung_up
        }};
    }

    let mut lines = input.lines();
    loop {
        line_no += 1;
        let line = match lines.next() {
            None => break,
            Some(Ok(l)) => l,
            Some(Err(e)) => {
                if flush_batch!() {
                    break;
                }
                bad_record!(format!("stdin read failed: {e}"), None)
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        if skip_header {
            skip_header = false;
            continue;
        }
        let row = match parse_row(&line, delimiter, &missing, n_dims) {
            Ok(r) => r,
            Err(msg) => {
                // Drain buffered records first so the error verdict lands at
                // its arrival position in the output.
                if flush_batch!() {
                    break;
                }
                bad_record!(msg, Some(&line))
            }
        };
        if batch > 1 {
            pending.push((line_no, line, row));
            if pending.len() >= batch && flush_batch!() {
                break;
            }
            continue;
        }
        let verdict = {
            let _span = obs::span(obs::Level::Trace, "hdoutlier.cli", "score_record");
            match scorer.score_record(&row) {
                Ok(v) => v,
                Err(e) => bad_record!(e.to_string(), Some(&line)),
            }
        };
        consecutive_errors = 0;
        if !(outliers_only && !verdict.outlier && verdict.drift.is_none()) {
            let rendered = match verdict_json(&verdict, &scorer) {
                Ok(j) => j.render(),
                Err(e) => return (exit::RUNTIME, format!("line {line_no}: {e}")),
            };
            match emit_line(sink, &rendered) {
                Ok(true) => {}
                Ok(false) => break, // consumer hung up
                Err(e) => return (exit::RUNTIME, e),
            }
        }
        if let Some(path) = &checkpoint_path {
            if scorer.records_scored() % checkpoint_every == 0 {
                let cp = Checkpoint::capture(&scorer, skipped_total, quarantined_total);
                if let Err(e) = cp.save_atomic(path) {
                    return (
                        exit::RUNTIME,
                        format!("failed to checkpoint to {}: {e}", path.display()),
                    );
                }
                checkpoints_ctr.inc();
            }
        }
    }
    // Score any partial batch left at EOF (or hang-up: the verdicts go
    // nowhere, but the records were accepted and belong in the checkpoint).
    let _ = flush_batch!();
    // A final checkpoint at EOF (or consumer hang-up) so a clean restart
    // resumes from the last record, not the last cadence boundary.
    if let Some(path) = &checkpoint_path {
        let cp = Checkpoint::capture(&scorer, skipped_total, quarantined_total);
        if let Err(e) = cp.save_atomic(path) {
            return (
                exit::RUNTIME,
                format!("failed to checkpoint to {}: {e}", path.display()),
            );
        }
        checkpoints_ctr.inc();
    }
    (exit::OK, String::new())
}

/// Writes one NDJSON line, flushed immediately. `Ok(false)` means the
/// consumer closed the pipe (`| head`) — a normal way to stop, not an
/// error.
fn emit_line(sink: &mut impl Write, rendered: &str) -> Result<bool, String> {
    match writeln!(sink, "{rendered}").and_then(|()| sink.flush()) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(false),
        Err(e) => Err(format!("stdout write failed: {e}")),
    }
}

/// Splits one CSV line into `n_dims` numbers (missing markers become NaN).
fn parse_row(
    line: &str,
    delimiter: char,
    missing: &[String],
    n_dims: usize,
) -> Result<Vec<f64>, String> {
    let records = hdoutlier_data::csv::parse_records(line, delimiter)
        .map_err(|e| format!("malformed CSV: {e}"))?;
    let fields = match records.as_slice() {
        [one] => one,
        _ => return Err("expected exactly one record".to_string()),
    };
    if fields.len() != n_dims {
        return Err(format!(
            "expected {n_dims} fields (the model's dimensionality), got {}",
            fields.len()
        ));
    }
    fields
        .iter()
        .map(|f| {
            let f = f.trim();
            if missing.iter().any(|m| m == f) {
                Ok(f64::NAN)
            } else {
                f.parse::<f64>()
                    .map_err(|_| format!("cannot parse {f:?} as a number"))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::test_support::planted_csv;
    use crate::exit;
    use crate::json::Json;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    /// Trains a model from a planted CSV and returns (csv text, model path,
    /// planted row indices).
    fn trained(name: &str) -> (String, std::path::PathBuf, Vec<usize>) {
        let (csv, planted_rows) = planted_csv(name);
        let model_path = csv.with_extension("model.json");
        let (code, out) = crate::commands::detect::run_captured(&argv(&[
            "--phi=4",
            "--k=2",
            "--m=6",
            "--search=brute",
            "--save-model",
            model_path.to_str().unwrap(),
            csv.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK, "{out}");
        let text = std::fs::read_to_string(&csv).unwrap();
        (text, model_path, planted_rows)
    }

    #[test]
    fn emits_one_ndjson_verdict_per_record() {
        let (csv_text, model_path, planted_rows) = trained("stream-basic");
        let n_records = csv_text.lines().count() - 1; // header
        let (code, out) = super::run_with_input(
            &argv(&["--model", model_path.to_str().unwrap()]),
            csv_text.as_bytes(),
        );
        assert_eq!(code, exit::OK, "{out}");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), n_records);
        // Every line is valid JSON with the expected shape, indexed in order.
        for (i, line) in lines.iter().enumerate() {
            let j = Json::parse(line).unwrap_or_else(|e| panic!("line {i}: {e}\n{line}"));
            assert_eq!(j.get("record").and_then(Json::as_number), Some(i as f64));
            assert!(j.get("outlier").is_some());
            assert!(j.get("score").is_some());
        }
        // The planted outliers are flagged on their own lines.
        let flagged: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains("\"outlier\":true"))
            .map(|(i, _)| i)
            .collect();
        assert!(
            planted_rows.iter().any(|r| flagged.contains(r)),
            "planted {planted_rows:?}, flagged {flagged:?}"
        );
        // Flagged records carry the matched projection string.
        let sample = lines[flagged[0]];
        assert!(sample.contains("\"projections\":[\""), "{sample}");
    }

    #[test]
    fn outliers_only_filters_inliers() {
        let (csv_text, model_path, _) = trained("stream-filter");
        let (code, all) = super::run_with_input(
            &argv(&["--model", model_path.to_str().unwrap()]),
            csv_text.as_bytes(),
        );
        assert_eq!(code, exit::OK);
        let (code, some) = super::run_with_input(
            &argv(&["--model", model_path.to_str().unwrap(), "--outliers-only"]),
            csv_text.as_bytes(),
        );
        assert_eq!(code, exit::OK);
        assert!(some.lines().count() < all.lines().count());
        assert!(some.lines().all(|l| l.contains("\"outlier\":true")));
    }

    #[test]
    fn drift_report_attaches_on_cadence() {
        let (csv_text, model_path, _) = trained("stream-drift");
        let (code, out) = super::run_with_input(
            &argv(&[
                "--model",
                model_path.to_str().unwrap(),
                "--drift-every",
                "100",
            ]),
            csv_text.as_bytes(),
        );
        assert_eq!(code, exit::OK, "{out}");
        let with_drift: Vec<usize> = out
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains("\"drift\":"))
            .map(|(i, _)| i)
            .collect();
        // 400 records, cadence 100 → checks at records 99, 199, 299, 399.
        assert_eq!(with_drift, vec![99, 199, 299, 399], "{with_drift:?}");
        // Replaying the training data: the equi-depth grid fits, no drift.
        for (_, line) in out.lines().enumerate().filter(|(i, _)| *i == 399) {
            assert!(line.contains("\"drifted\":false"), "{line}");
        }
    }

    #[test]
    fn drifted_stream_is_reported() {
        let (csv_text, model_path, _) = trained("stream-drifted");
        // Shift every value of the first column far into one tail.
        let mut lines = csv_text.lines();
        let header = lines.next().unwrap().to_string();
        let mut shifted = header + "\n";
        for line in lines {
            let mut fields: Vec<String> = line.split(',').map(str::to_string).collect();
            fields[0] = "1e6".to_string();
            shifted.push_str(&fields.join(","));
            shifted.push('\n');
        }
        let (code, out) = super::run_with_input(
            &argv(&[
                "--model",
                model_path.to_str().unwrap(),
                "--drift-every",
                "400",
            ]),
            shifted.as_bytes(),
        );
        assert_eq!(code, exit::OK, "{out}");
        let report_line = out
            .lines()
            .find(|l| l.contains("\"drift\":"))
            .expect("cadence fired");
        assert!(report_line.contains("\"drifted\":true"), "{report_line}");
        let j = Json::parse(report_line).unwrap();
        let dims = j
            .get("drift")
            .and_then(|d| d.get("drifted_dims"))
            .and_then(Json::as_array)
            .unwrap();
        assert!(
            dims.iter().any(|d| d.as_number() == Some(0.0)),
            "{report_line}"
        );
    }

    #[test]
    fn metrics_out_writes_parseable_ndjson() {
        let (csv_text, model_path, _) = trained("stream-metrics");
        let metrics_path = model_path.with_extension("metrics.ndjson");
        let (code, out) = super::run_with_input(
            &argv(&[
                "--model",
                model_path.to_str().unwrap(),
                "--metrics-out",
                metrics_path.to_str().unwrap(),
            ]),
            csv_text.as_bytes(),
        );
        assert_eq!(code, exit::OK, "{out}");
        let snapshot = std::fs::read_to_string(&metrics_path).unwrap();
        let mut names = Vec::new();
        for line in snapshot.lines() {
            let j = Json::parse(line).unwrap_or_else(|e| panic!("{e}\n{line}"));
            names.push(
                j.get("metric")
                    .and_then(Json::as_str)
                    .expect("metric name")
                    .to_string(),
            );
            assert!(j.get("type").is_some(), "{line}");
        }
        // The stream counters show up; totals are process-global, so only
        // assert presence (other in-process tests also stream records).
        assert!(
            names.iter().any(|n| n == "hdoutlier.stream.records"),
            "{names:?}"
        );
        assert!(
            names
                .iter()
                .any(|n| n == "hdoutlier.stream.record_latency_us"),
            "{names:?}"
        );
    }

    #[test]
    fn metrics_out_is_flushed_on_error_exits_too() {
        let (_, model_path, _) = trained("stream-metrics-err");
        let metrics_path = model_path.with_extension("err-metrics.ndjson");
        let _ = std::fs::remove_file(&metrics_path);
        // Default abort policy dies on the malformed line...
        let (code, out) = super::run_with_input(
            &argv(&[
                "--model",
                model_path.to_str().unwrap(),
                "--no-header",
                "--metrics-out",
                metrics_path.to_str().unwrap(),
            ]),
            "1,2,3\n".as_bytes(),
        );
        assert_eq!(code, exit::RUNTIME, "{out}");
        // ...but the snapshot is still written.
        let snapshot = std::fs::read_to_string(&metrics_path).expect("snapshot flushed");
        assert!(snapshot.contains("hdoutlier.stream.records"), "{snapshot}");
    }

    #[test]
    fn missing_values_and_no_header_are_handled() {
        let (_, model_path, _) = trained("stream-missing");
        // Two headerless records with missing markers in several columns.
        let input = "0,0,?,0,NaN,0\n1,1,1,1,1,1\n";
        let (code, out) = super::run_with_input(
            &argv(&["--model", model_path.to_str().unwrap(), "--no-header"]),
            input.as_bytes(),
        );
        assert_eq!(code, exit::OK, "{out}");
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn skip_policy_keeps_scoring_past_bad_lines() {
        let (_, model_path, _) = trained("stream-skip");
        let input = "1,2,3\n0,0,0,0,0,0\n1,2,3,4,5,banana\n1,1,1,1,1,1\n";
        let (code, out) = super::run_with_input(
            &argv(&[
                "--model",
                model_path.to_str().unwrap(),
                "--no-header",
                "--on-error",
                "skip",
            ]),
            input.as_bytes(),
        );
        assert_eq!(code, exit::OK, "{out}");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // Bad lines 1 and 3 become error verdicts; good records keep a
        // contiguous index.
        let j = Json::parse(lines[0]).unwrap();
        assert_eq!(j.get("line").and_then(Json::as_number), Some(1.0));
        assert_eq!(j.get("action").and_then(Json::as_str), Some("skip"));
        assert!(j.get("error").is_some());
        assert!(lines[1].contains("\"record\":0"), "{}", lines[1]);
        assert!(lines[2].contains("\"action\":\"skip\""), "{}", lines[2]);
        assert!(lines[2].contains("banana"), "{}", lines[2]);
        assert!(lines[3].contains("\"record\":1"), "{}", lines[3]);
    }

    #[test]
    fn circuit_breaker_halts_runaway_garbage() {
        let (_, model_path, _) = trained("stream-breaker");
        let garbage = "x\n".repeat(10);
        let (code, out) = super::run_with_input(
            &argv(&[
                "--model",
                model_path.to_str().unwrap(),
                "--no-header",
                "--on-error",
                "skip",
                "--max-consecutive-errors",
                "3",
            ]),
            garbage.as_bytes(),
        );
        assert_eq!(code, exit::RUNTIME);
        assert!(out.contains("consecutive"), "{out}");
        // 3 error verdicts got out before the 4th tripped the breaker.
        assert_eq!(
            out.lines().filter(|l| l.starts_with('{')).count(),
            3,
            "{out}"
        );
        // A good record in between resets the count.
        let mixed = "x\nx\nx\n0,0,0,0,0,0\nx\nx\nx\n";
        let (code, out) = super::run_with_input(
            &argv(&[
                "--model",
                model_path.to_str().unwrap(),
                "--no-header",
                "--on-error",
                "skip",
                "--max-consecutive-errors",
                "3",
            ]),
            mixed.as_bytes(),
        );
        assert_eq!(code, exit::OK, "{out}");
        assert_eq!(out.lines().count(), 7);
    }

    #[test]
    fn batch_scoring_output_is_byte_identical_to_record_at_a_time() {
        let (csv_text, model_path, _) = trained("stream-batch");
        let (code, serial) = super::run_with_input(
            &argv(&["--model", model_path.to_str().unwrap()]),
            csv_text.as_bytes(),
        );
        assert_eq!(code, exit::OK, "{serial}");
        assert!(!serial.is_empty());
        // Batch sizes that divide the stream unevenly, several thread counts.
        for (batch, threads) in [("1", "2"), ("7", "2"), ("7", "8"), ("64", "4")] {
            let (code, batched) = super::run_with_input(
                &argv(&[
                    "--model",
                    model_path.to_str().unwrap(),
                    "--batch",
                    batch,
                    "--threads",
                    threads,
                ]),
                csv_text.as_bytes(),
            );
            assert_eq!(code, exit::OK, "{batched}");
            assert_eq!(batched, serial, "--batch {batch} --threads {threads}");
        }
    }

    #[test]
    fn batched_error_verdicts_keep_arrival_order() {
        let (_, model_path, _) = trained("stream-batch-err");
        let input = "1,2,3\n0,0,0,0,0,0\n1,2,3,4,5,banana\n1,1,1,1,1,1\n";
        let base = argv(&[
            "--model",
            model_path.to_str().unwrap(),
            "--no-header",
            "--on-error",
            "skip",
        ]);
        let (code, serial) = super::run_with_input(&base, input.as_bytes());
        assert_eq!(code, exit::OK, "{serial}");
        let mut batched_args = base.clone();
        batched_args.extend(argv(&["--batch", "3", "--threads", "2"]));
        let (code, batched) = super::run_with_input(&batched_args, input.as_bytes());
        assert_eq!(code, exit::OK, "{batched}");
        assert_eq!(batched, serial);
    }

    #[test]
    fn batch_and_threads_reject_zero() {
        let (_, model_path, _) = trained("stream-batch-usage");
        for flag in ["--batch=0", "--threads=0"] {
            let (code, out) = super::run_with_input(
                &argv(&["--model", model_path.to_str().unwrap(), flag]),
                b"" as &[u8],
            );
            assert_eq!(code, exit::USAGE, "{flag}");
            assert!(out.contains("must be >= 1"), "{out}");
        }
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        let (_, model_path, _) = trained("stream-errors");
        // Wrong field count.
        let (code, out) = super::run_with_input(
            &argv(&["--model", model_path.to_str().unwrap(), "--no-header"]),
            "1,2,3\n".as_bytes(),
        );
        assert_eq!(code, exit::RUNTIME);
        assert!(out.contains("line 1"), "{out}");
        assert!(out.contains("expected 6 fields"), "{out}");
        // Unparseable number.
        let (code, out) = super::run_with_input(
            &argv(&["--model", model_path.to_str().unwrap(), "--no-header"]),
            "1,2,3,4,5,banana\n".as_bytes(),
        );
        assert_eq!(code, exit::RUNTIME);
        assert!(out.contains("banana"), "{out}");
        // Usage errors.
        let (code, out) = super::run_with_input(&argv(&[]), "".as_bytes());
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("--model is required"));
        let (code, out) = super::run_with_input(
            &argv(&["--model", "x.json", "positional.csv"]),
            "".as_bytes(),
        );
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("read from stdin"), "{out}");
        let (code, _) =
            super::run_with_input(&argv(&["--model", "/nope/missing.json"]), "".as_bytes());
        assert_eq!(code, exit::RUNTIME);
        // Bad drift flags.
        let (code, out) = super::run_with_input(
            &argv(&[
                "--model",
                model_path.to_str().unwrap(),
                "--drift-alpha",
                "7",
            ]),
            "".as_bytes(),
        );
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("alpha"), "{out}");
        // Bad fault-tolerance flags.
        for bad in [
            vec!["--model", "m.json", "--on-error", "explode"],
            vec!["--model", "m.json", "--on-error", "quarantine:"],
            vec!["--model", "m.json", "--max-consecutive-errors", "0"],
            vec!["--model", "m.json", "--checkpoint-every", "50"],
            vec![
                "--model",
                "m.json",
                "--checkpoint",
                "c.json",
                "--checkpoint-every",
                "0",
            ],
        ] {
            let (code, out) = super::run_with_input(&argv(&bad), "".as_bytes());
            assert_eq!(code, exit::USAGE, "{bad:?}: {out}");
        }
        // Resume from a missing checkpoint is a runtime error.
        let (code, out) = super::run_with_input(
            &argv(&[
                "--model",
                model_path.to_str().unwrap(),
                "--resume",
                "/nope/missing.ckpt",
            ]),
            "".as_bytes(),
        );
        assert_eq!(code, exit::RUNTIME);
        assert!(out.contains("cannot resume"), "{out}");
    }

    // ---- parse_row edge cases ------------------------------------------

    fn markers() -> Vec<String> {
        hdoutlier_data::csv::CsvOptions::default().missing_markers
    }

    #[test]
    fn parse_row_missing_markers_tolerate_surrounding_whitespace() {
        let row = super::parse_row(" ? , NA ,  NaN , 1.5", ',', &markers(), 4).unwrap();
        assert!(row[0].is_nan());
        assert!(row[1].is_nan());
        assert!(row[2].is_nan());
        assert_eq!(row[3], 1.5);
        // An entirely blank field is the empty-string marker after trimming.
        let row = super::parse_row("1,   ,3", ',', &markers(), 3).unwrap();
        assert!(row[1].is_nan());
    }

    #[test]
    fn parse_row_wrong_delimiter_is_a_field_count_error() {
        // Semicolon data split on commas collapses into one un-parseable
        // field — report the count mismatch, not a panic.
        let err = super::parse_row("1;2;3", ',', &markers(), 3).unwrap_err();
        assert!(err.contains("expected 3 fields"), "{err}");
        // The right delimiter parses.
        let row = super::parse_row("1;2;3", ';', &markers(), 3).unwrap();
        assert_eq!(row, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn parse_row_field_count_mismatches() {
        let err = super::parse_row("1,2", ',', &markers(), 3).unwrap_err();
        assert!(err.contains("expected 3 fields"), "{err}");
        assert!(err.contains("got 2"), "{err}");
        let err = super::parse_row("1,2,3,4", ',', &markers(), 3).unwrap_err();
        assert!(err.contains("got 4"), "{err}");
    }

    #[test]
    fn parse_row_quoted_fields_and_utf8() {
        // Quoted numeric fields parse; quoted text (UTF-8 included) is a
        // per-field error naming the offending content.
        let row = super::parse_row("\"1.5\",2", ',', &markers(), 2).unwrap();
        assert_eq!(row, vec![1.5, 2.0]);
        let err = super::parse_row("\"héllo, wörld\",2", ',', &markers(), 2).unwrap_err();
        assert!(err.contains("héllo, wörld"), "{err}");
        // A quoted missing marker still reads as missing.
        let row = super::parse_row("\"?\",2", ',', &markers(), 2).unwrap();
        assert!(row[0].is_nan());
        // An unterminated quote is malformed CSV, not a panic.
        let err = super::parse_row("\"1,2", ',', &markers(), 2).unwrap_err();
        assert!(err.contains("malformed CSV"), "{err}");
    }

    #[test]
    fn parse_row_inf_and_nan_literals() {
        // Rust's f64 parser accepts inf/-inf/infinity case-insensitively;
        // they flow through as infinities (the grid clamps them to the
        // outermost ranges), while NaN spellings hit the missing-marker
        // list first and become missing.
        let row = super::parse_row("inf,-inf,Infinity", ',', &markers(), 3).unwrap();
        assert_eq!(row[0], f64::INFINITY);
        assert_eq!(row[1], f64::NEG_INFINITY);
        assert_eq!(row[2], f64::INFINITY);
        let row = super::parse_row("NaN,nan", ',', &markers(), 2).unwrap();
        assert!(row[0].is_nan()); // marker
        assert!(row[1].is_nan()); // f64 parse of "nan"
    }
}
