//! `hdoutlier advise` — the §2.4 parameter advisor.

use super::parse_or_usage;
use crate::exit;
use crate::json::{FieldChain, Json};
use crate::obs_setup::{self, ObsSession};
use hdoutlier_core::params::advise;
use hdoutlier_stats::{significance_of, sparsity_coefficient};

/// Per-command help.
pub const HELP: &str = "\
hdoutlier advise — recommend phi and k for a dataset size (paper §2.4)

USAGE:
    hdoutlier advise --records <N> [--target <s>] [--json]
    hdoutlier advise <input.csv> [--target <s>] [--json]

OPTIONS:
    --records <N>   number of records (alternative to passing a CSV)
    --target <s>    target sparsity coefficient (default -3)
    --json          emit JSON
    --log-level <l>      emit pipeline events on stderr (error|warn|info|debug|trace)
    --log-json           render events as NDJSON instead of human-readable text
    --metrics-out <p>    enable timing metrics and write an NDJSON snapshot to <p>
    --trace-out <p>      profile spans, write Chrome trace-event JSON to <p>
    --profile-out <p>    sample span stacks, write folded flamegraph stacks to <p>
    --profile-hz <n>     sampling rate for --profile-out (default 99)
";

/// Runs the subcommand.
pub fn run(argv: &[String]) -> (i32, String) {
    let spec = obs_setup::spec_with(
        &["records", "target", "delimiter", "label-column"],
        &["json", "no-header"],
    );
    let parsed = match parse_or_usage(&spec, argv, HELP) {
        Ok(p) => p,
        Err(out) => return out,
    };
    let mut session = match ObsSession::init(&parsed) {
        Ok(s) => s,
        Err(e) => return (exit::USAGE, format!("{e}\n\n{HELP}")),
    };
    let target: f64 = match parsed.or("target", "number", -3.0) {
        Ok(t) => t,
        Err(e) => return super::usage_err(e, HELP),
    };
    let n: u64 = match parsed.opt::<u64>("records", "integer") {
        Err(e) => return super::usage_err(e, HELP),
        Ok(Some(n)) => n,
        Ok(None) => {
            // Fall back to counting a CSV.
            match super::load_dataset(&parsed, HELP) {
                Ok(ds) => ds.n_rows() as u64,
                Err(out) => return out,
            }
        }
    };
    if n == 0 {
        return (exit::USAGE, format!("--records must be positive\n\n{HELP}"));
    }

    let advice = advise(n, target);
    let one_point = sparsity_coefficient(1, n, advice.phi, advice.k);
    if parsed.has("json") {
        let j = Json::object()
            .field("records", n)
            .field("target_sparsity", target)
            .field("phi", advice.phi)
            .field("k", advice.k)
            .field("empty_cube_sparsity", advice.empty_cube_sparsity)
            .field("one_point_cube_sparsity", one_point)
            .field(
                "empty_cube_significance",
                significance_of(advice.empty_cube_sparsity),
            );
        return match j {
            Ok(j) => match session.finish() {
                Ok(()) => (exit::OK, j.pretty() + "\n"),
                Err(e) => (exit::RUNTIME, e),
            },
            Err(e) => (exit::RUNTIME, format!("failed to render advice: {e}")),
        };
    }
    let mut out = format!(
        "for N = {n} records (target sparsity {target}):\n\
         \n  phi = {}   (grid ranges per dimension)\
         \n  k   = {}   (projection dimensionality, Eq. 2)\n",
        advice.phi, advice.k
    );
    out.push_str(&format!(
        "\nan empty cube then scores S = {:.2} (significance {:.2e});\n\
         a one-point cube scores S = {:.2}\n",
        advice.empty_cube_sparsity,
        significance_of(advice.empty_cube_sparsity),
        one_point
    ));
    if advice.empty_cube_sparsity > target {
        out.push_str(
            "\nwarning: even an empty cube cannot reach the target — the dataset\n\
             is too small for significant projections at any k (see paper §2.4).\n",
        );
    }
    if let Err(e) = session.finish() {
        return (exit::RUNTIME, e);
    }
    (exit::OK, out)
}

#[cfg(test)]
mod tests {
    use crate::exit;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn advises_from_record_count() {
        let (code, out) = super::run(&argv(&["--records", "10000"]));
        assert_eq!(code, exit::OK);
        assert!(out.contains("phi = 10"), "{out}");
        assert!(out.contains("k   = 3"), "{out}");
    }

    #[test]
    fn json_output() {
        let (code, out) = super::run(&argv(&["--records", "452", "--json"]));
        assert_eq!(code, exit::OK);
        assert!(out.contains("\"phi\""));
        assert!(out.contains("\"empty_cube_sparsity\""));
    }

    #[test]
    fn warns_when_dataset_too_small() {
        let (code, out) = super::run(&argv(&["--records", "5"]));
        assert_eq!(code, exit::OK);
        assert!(out.contains("warning"), "{out}");
    }

    #[test]
    fn advises_from_csv() {
        let (path, _) = super::super::test_support::planted_csv("advise-csv");
        let (code, out) = super::run(&argv(&[path.to_str().unwrap()]));
        assert_eq!(code, exit::OK);
        assert!(out.contains("N = 400"), "{out}");
    }

    #[test]
    fn usage_errors() {
        let (code, _) = super::run(&argv(&["--records", "abc"]));
        assert_eq!(code, exit::USAGE);
        let (code, out) = super::run(&argv(&["--records", "0"]));
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("positive"));
        let (code, _) = super::run(&argv(&["--help"]));
        assert_eq!(code, exit::OK);
    }
}
