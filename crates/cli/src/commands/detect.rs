//! `hdoutlier detect` — run the subspace detector on a CSV file.

use super::{load_dataset, parse_or_usage, usage_err};
use crate::exit;
use crate::json::{FieldChain, Json, JsonError};
use crate::obs_setup::{self, ObsSession};
use hdoutlier_core::crossover::CrossoverKind;
use hdoutlier_core::detector::{OutlierDetector, SearchMethod};
use hdoutlier_core::params::advise;
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};

/// Per-command help.
pub const HELP: &str = "\
hdoutlier detect — find outliers via sparse-projection search

USAGE:
    hdoutlier detect [OPTIONS] <input.csv>

OPTIONS:
    --phi <n>            grid ranges per dimension (default: auto, paper §2.4)
    --k <n>              projection dimensionality (default: auto, Eq. 2)
    --m <n>              projections to report (default 20)
    --threshold <s>      keep only projections with sparsity <= s
    --search <method>    brute | evolutionary (default evolutionary)
    --crossover <kind>   optimized | two-point (default optimized)
    --grid <strategy>    equi-depth | equi-width (default equi-depth)
    --seed <n>           RNG seed for the evolutionary search (default 0)
    --generations <n>    GA generation cap (default 500)
    --population <n>     GA population size (default 100)
    --threads <n>        worker threads for the search (default: available
                         cores; the report is identical at any thread count)
    --save-model <path>  persist the fitted grid + projections as JSON
    --label-column <c>   strip column <c> (name, or index with --no-header)
    --delimiter <c>      field separator (default ',')
    --no-header          first row is data, not column names
    --json               emit a JSON report instead of text
    --quiet              print only the outlier row indices
    --log-level <l>      emit pipeline events on stderr (error|warn|info|debug|trace)
    --log-json           render events as NDJSON instead of human-readable text
    --metrics-out <p>    enable timing metrics and write an NDJSON snapshot to <p>
    --trace-out <p>      profile spans, write Chrome trace-event JSON to <p>
    --profile-out <p>    sample span stacks, write folded flamegraph stacks to <p>
    --profile-hz <n>     sampling rate for --profile-out (default 99)
    --serve-metrics <a>  serve /metrics, /healthz, /snapshot over HTTP on <a>
                         while detection runs (e.g. 127.0.0.1:9184)
";

/// Runs the subcommand against stdout.
pub fn run(argv: &[String]) -> (i32, String) {
    let stdout = std::io::stdout();
    run_to(argv, &mut stdout.lock())
}

/// Runs the subcommand, collecting the report and any error text into one
/// string (the test entry point).
pub fn run_captured(argv: &[String]) -> (i32, String) {
    let mut sink = Vec::new();
    let (code, err) = run_to(argv, &mut sink);
    let mut out = String::from_utf8(sink).expect("reports are valid UTF-8");
    out.push_str(&err);
    (code, out)
}

/// The command core: the report goes to `sink` (a consumer closing the pipe
/// early — `| head` — is a normal shutdown); the returned string carries
/// only help or error text.
pub fn run_to(argv: &[String], sink: &mut impl std::io::Write) -> (i32, String) {
    let spec = obs_setup::spec_with(
        &[
            "phi",
            "k",
            "m",
            "threshold",
            "search",
            "crossover",
            "grid",
            "seed",
            "generations",
            "population",
            "threads",
            "label-column",
            "delimiter",
            "save-model",
            "serve-metrics",
        ],
        &["json", "quiet", "no-header"],
    );
    let parsed = match parse_or_usage(&spec, argv, HELP) {
        Ok(p) => p,
        Err(out) => return out,
    };
    let mut session = match ObsSession::init(&parsed) {
        Ok(s) => s,
        Err(e) => return (exit::USAGE, format!("{e}\n\n{HELP}")),
    };

    macro_rules! flag {
        ($($call:tt)*) => {
            match parsed.$($call)* {
                Ok(v) => v,
                Err(e) => return usage_err(e, HELP),
            }
        };
    }
    let phi: Option<u32> = flag!(opt("phi", "integer"));
    let k: Option<usize> = flag!(opt("k", "integer"));
    let m: usize = flag!(or("m", "integer", 20));
    let threshold: Option<f64> = flag!(opt("threshold", "number"));
    let seed: u64 = flag!(or("seed", "integer", 0));
    let generations: usize = flag!(or("generations", "integer", 500));
    let population: usize = flag!(or("population", "integer", 100));
    let threads: usize = flag!(or("threads", "integer", hdoutlier_pool::default_threads()));
    if threads == 0 {
        return (exit::USAGE, format!("--threads must be >= 1\n\n{HELP}"));
    }

    let search = match parsed.get("search").unwrap_or("evolutionary") {
        "brute" | "brute-force" => SearchMethod::BruteForce,
        "evolutionary" | "evolve" | "ga" => SearchMethod::Evolutionary,
        other => {
            return (
                exit::USAGE,
                format!("--search must be brute|evolutionary, got {other:?}\n\n{HELP}"),
            )
        }
    };
    let crossover = match parsed.get("crossover").unwrap_or("optimized") {
        "optimized" => CrossoverKind::Optimized,
        "two-point" | "twopoint" => CrossoverKind::TwoPoint,
        other => {
            return (
                exit::USAGE,
                format!("--crossover must be optimized|two-point, got {other:?}\n\n{HELP}"),
            )
        }
    };
    let strategy = match parsed.get("grid").unwrap_or("equi-depth") {
        "equi-depth" | "equidepth" => DiscretizeStrategy::EquiDepth,
        "equi-width" | "equiwidth" => DiscretizeStrategy::EquiWidth,
        other => {
            return (
                exit::USAGE,
                format!("--grid must be equi-depth|equi-width, got {other:?}\n\n{HELP}"),
            )
        }
    };

    let dataset = match load_dataset(&parsed, HELP) {
        Ok(d) => d,
        Err(out) => return out,
    };

    let mut builder = OutlierDetector::builder()
        .m(m)
        .seed(seed)
        .search(search)
        .crossover(crossover)
        .strategy(strategy)
        .max_generations(generations)
        .population(population)
        .threads(threads);
    if let Some(phi) = phi {
        builder = builder.phi(phi);
    }
    if let Some(k) = k {
        builder = builder.k(k);
    }
    if let Some(t) = threshold {
        builder = builder.sparsity_threshold(t);
    }
    let detector = builder.build();

    let report = match detector.detect(&dataset) {
        Ok(r) => r,
        Err(e) => return (exit::RUNTIME, format!("detection failed: {e}")),
    };

    // Rebuild the grid for explanations (cheap relative to the search).
    let effective_phi = phi.unwrap_or_else(|| advise(dataset.n_rows() as u64, -3.0).phi);
    let disc = match Discretized::new(&dataset, effective_phi, strategy) {
        Ok(d) => d,
        Err(e) => return (exit::RUNTIME, format!("discretization failed: {e}")),
    };

    if let Some(path) = parsed.get("save-model") {
        let model = hdoutlier_core::FittedModel::new(
            hdoutlier_data::GridSpec::from_discretized(&disc),
            report.projections.clone(),
        );
        let json = match crate::model_io::to_json(&model) {
            Ok(json) => json,
            Err(e) => return (exit::RUNTIME, format!("failed to serialize model: {e}")),
        };
        if let Err(e) = std::fs::write(path, json.pretty() + "\n") {
            return (exit::RUNTIME, format!("failed to write model {path}: {e}"));
        }
    }

    let rendered = if parsed.has("quiet") {
        let rows: Vec<String> = report.outlier_rows.iter().map(usize::to_string).collect();
        rows.join("\n") + "\n"
    } else if parsed.has("json") {
        match render_json(&report, &disc, session.wants_metrics()) {
            Ok(json) => json.pretty() + "\n",
            Err(e) => return (exit::RUNTIME, format!("failed to render report: {e}")),
        }
    } else {
        render_text(&report, &disc)
    };
    if let Err(e) = super::emit_report(sink, &rendered) {
        return (exit::RUNTIME, e);
    }
    match session.finish() {
        Ok(()) => (exit::OK, String::new()),
        Err(e) => (exit::RUNTIME, e),
    }
}

fn render_text(report: &hdoutlier_core::OutlierReport, disc: &Discretized) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} sparse projection(s); {} outlier row(s); search: {} units of work in {}\n\n",
        report.projections.len(),
        report.outlier_rows.len(),
        report.stats.work,
        obs_setup::fmt_elapsed(report.stats.elapsed),
    ));
    for i in 0..report.projections.len() {
        out.push_str(&format!("{:>3}. {}\n", i + 1, report.explain(i, disc)));
        let rows = &report.rows_by_projection[i];
        out.push_str(&format!("     rows: {rows:?}\n"));
    }
    out.push_str(&format!("\noutliers: {:?}\n", report.outlier_rows));
    out
}

fn render_json(
    report: &hdoutlier_core::OutlierReport,
    disc: &Discretized,
    with_metrics: bool,
) -> Result<Json, JsonError> {
    let projections: Vec<Json> = report
        .projections
        .iter()
        .zip(&report.rows_by_projection)
        .enumerate()
        .map(|(i, (s, rows))| {
            Json::object()
                .field("projection", s.projection.to_string())
                .field("sparsity", s.sparsity)
                .field("significance", s.significance())
                .field("count", s.count)
                .field("explanation", report.explain(i, disc))
                .field("rows", rows.clone())
        })
        .collect::<Result<_, _>>()?;
    let mut json = Json::object()
        .field("projections", Json::Array(projections))
        .field("outlier_rows", report.outlier_rows.clone())
        .field(
            "stats",
            Json::object()
                .field("work", report.stats.work)
                .field("generations", report.stats.generations)
                .field("completed", report.stats.completed)
                .field("elapsed_ms", obs_setup::elapsed_ms(report.stats.elapsed))?,
        );
    if with_metrics {
        json = json.field("metrics", obs_setup::metrics_json()?);
    }
    json
}

#[cfg(test)]
mod tests {
    use super::super::test_support::planted_csv;
    use crate::exit;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn detect_finds_planted_outliers_in_csv() {
        let (path, planted_rows) = planted_csv("detect-basic");
        let (code, out) = super::run_captured(&argv(&[
            "--phi",
            "4",
            "--k",
            "2",
            "--m",
            "6",
            "--search",
            "brute",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK, "{out}");
        assert!(out.contains("sparse projection"));
        let hit = planted_rows.iter().any(|r| out.contains(&format!("{r}")));
        assert!(hit, "no planted row mentioned in:\n{out}");
    }

    #[test]
    fn quiet_mode_prints_only_indices() {
        let (path, _) = planted_csv("detect-quiet");
        let (code, out) = super::run_captured(&argv(&[
            "--phi",
            "4",
            "--k",
            "2",
            "--m",
            "4",
            "--search",
            "brute",
            "--quiet",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK);
        for line in out.lines() {
            assert!(line.parse::<usize>().is_ok(), "non-index line {line:?}");
        }
    }

    #[test]
    fn json_mode_emits_wellformed_structure() {
        let (path, _) = planted_csv("detect-json");
        let (code, out) = super::run_captured(&argv(&[
            "--phi=4",
            "--k=2",
            "--m=3",
            "--search=brute",
            "--json",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK);
        assert!(out.contains("\"projections\""));
        assert!(out.contains("\"outlier_rows\""));
        assert!(out.contains("\"sparsity\""));
        // Balanced braces as a cheap well-formedness check.
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn usage_errors() {
        let (code, out) = super::run_captured(&argv(&["--bogus", "x.csv"]));
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("unknown option"));
        let (code, _) = super::run_captured(&argv(&["--help"]));
        assert_eq!(code, exit::OK);
        let (code, out) = super::run_captured(&argv(&["--search", "magic", "x.csv"]));
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("--search"));
        let (code, out) = super::run_captured(&argv(&[]));
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("missing input"));
    }

    #[test]
    fn runtime_error_on_missing_file() {
        let (code, out) = super::run_captured(&argv(&["/nonexistent/nope.csv"]));
        assert_eq!(code, exit::RUNTIME);
        assert!(out.contains("failed to read"));
    }

    #[test]
    fn threshold_filters() {
        let (path, _) = planted_csv("detect-threshold");
        let (code, out) = super::run_captured(&argv(&[
            "--phi=4",
            "--k=2",
            "--m=20",
            "--search=brute",
            "--threshold=-1000",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK);
        assert!(out.contains("0 sparse projection(s)"), "{out}");
    }
}
