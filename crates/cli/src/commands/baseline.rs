//! `hdoutlier baseline` — the distance-based comparators, for side-by-side
//! evaluation against the subspace detector.

use super::{load_dataset, parse_or_usage, usage_err};
use crate::exit;
use crate::json::{FieldChain, Json};
use crate::obs_setup::{self, ObsSession};
use hdoutlier_baselines::{
    knorr_ng_outliers, lof::lof_top_n_threaded, ramaswamy_top_n_threaded, suggest_lambda, Metric,
};
use hdoutlier_data::clean::impute_mean;

/// Per-command help.
pub const HELP: &str = "\
hdoutlier baseline — distance-based comparators

USAGE:
    hdoutlier baseline --method <m> [OPTIONS] <input.csv>

OPTIONS:
    --method <m>         knn | lof | knorr-ng | intensional (required)
    --k <n>              neighbors (knn: k-th NN, lof: MinPts,
                         knorr-ng/intensional: neighbor budget; default 1/10/5/2)
    --depth <n>          lattice depth (intensional; default 2)
    --top <n>            outliers to report (knn/lof; default 10)
    --lambda <d>         distance threshold (knorr-ng; default: 5th-percentile
                         pairwise distance)
    --metric <name>      euclidean | manhattan | chebyshev (default euclidean)
    --threads <n>        worker threads for the kNN/LOF scans (default:
                         available cores; identical ranking at any count)
    --impute             mean-impute missing values first
    --label-column <c>   strip column <c> before computing distances
    --delimiter <c>      field separator (default ',')
    --no-header          first row is data
    --json               emit JSON
    --log-level <l>      emit pipeline events on stderr (error|warn|info|debug|trace)
    --log-json           render events as NDJSON instead of human-readable text
    --metrics-out <p>    enable timing metrics and write an NDJSON snapshot to <p>
    --trace-out <p>      profile spans, write Chrome trace-event JSON to <p>
    --profile-out <p>    sample span stacks, write folded flamegraph stacks to <p>
    --profile-hz <n>     sampling rate for --profile-out (default 99)
";

/// Runs the subcommand against stdout.
pub fn run(argv: &[String]) -> (i32, String) {
    let stdout = std::io::stdout();
    run_to(argv, &mut stdout.lock())
}

/// Runs the subcommand, collecting the report and any error text into one
/// string (the test entry point).
pub fn run_captured(argv: &[String]) -> (i32, String) {
    let mut sink = Vec::new();
    let (code, err) = run_to(argv, &mut sink);
    let mut out = String::from_utf8(sink).expect("reports are valid UTF-8");
    out.push_str(&err);
    (code, out)
}

/// The command core: the report goes to `sink` (a consumer closing the pipe
/// early — `| head` — is a normal shutdown); the returned string carries
/// only help or error text.
pub fn run_to(argv: &[String], sink: &mut impl std::io::Write) -> (i32, String) {
    let spec = obs_setup::spec_with(
        &[
            "method",
            "k",
            "top",
            "lambda",
            "depth",
            "metric",
            "threads",
            "label-column",
            "delimiter",
        ],
        &["json", "impute", "no-header"],
    );
    let parsed = match parse_or_usage(&spec, argv, HELP) {
        Ok(p) => p,
        Err(out) => return out,
    };
    let mut session = match ObsSession::init(&parsed) {
        Ok(s) => s,
        Err(e) => return (exit::USAGE, format!("{e}\n\n{HELP}")),
    };
    let Some(method) = parsed.get("method") else {
        return (exit::USAGE, format!("--method is required\n\n{HELP}"));
    };
    let method = method.to_string();
    let metric = match parsed.get("metric").unwrap_or("euclidean") {
        "euclidean" => Metric::Euclidean,
        "manhattan" => Metric::Manhattan,
        "chebyshev" => Metric::Chebyshev,
        other => {
            return (
                exit::USAGE,
                format!("--metric must be euclidean|manhattan|chebyshev, got {other:?}\n\n{HELP}"),
            )
        }
    };
    let top: usize = match parsed.or("top", "integer", 10) {
        Ok(t) => t,
        Err(e) => return usage_err(e, HELP),
    };
    let threads: usize = match parsed.or("threads", "integer", hdoutlier_pool::default_threads()) {
        Ok(t) if t >= 1 => t,
        Ok(_) => return (exit::USAGE, format!("--threads must be >= 1\n\n{HELP}")),
        Err(e) => return usage_err(e, HELP),
    };

    let mut dataset = match load_dataset(&parsed, HELP) {
        Ok(d) => d,
        Err(out) => return out,
    };
    if parsed.has("impute") {
        dataset = impute_mean(&dataset);
    }

    let rank_span =
        hdoutlier_obs::span(hdoutlier_obs::Level::Info, "hdoutlier.cli", "baseline_rank");
    let ranked: Result<Vec<(usize, f64)>, String> = match method.as_str() {
        "knn" => {
            let k: usize = match parsed.or("k", "integer", 1) {
                Ok(k) => k,
                Err(e) => return usage_err(e, HELP),
            };
            ramaswamy_top_n_threaded(&dataset, k, top, metric, threads)
                .map(|v| v.into_iter().map(|o| (o.row, o.score)).collect())
                .map_err(|e| e.to_string())
        }
        "lof" => {
            let k: usize = match parsed.or("k", "integer", 10) {
                Ok(k) => k,
                Err(e) => return usage_err(e, HELP),
            };
            lof_top_n_threaded(&dataset, k, top, metric, threads).map_err(|e| e.to_string())
        }
        "knorr-ng" | "knorrng" => {
            let k: usize = match parsed.or("k", "integer", 5) {
                Ok(k) => k,
                Err(e) => return usage_err(e, HELP),
            };
            let lambda = match parsed.opt::<f64>("lambda", "number") {
                Err(e) => return usage_err(e, HELP),
                Ok(Some(l)) => Ok(l),
                Ok(None) => suggest_lambda(&dataset, 0.05, metric).map_err(|e| e.to_string()),
            };
            lambda.and_then(|l| {
                knorr_ng_outliers(&dataset, k, l, metric)
                    .map(|rows| rows.into_iter().map(|r| (r, l)).collect())
                    .map_err(|e| e.to_string())
            })
        }
        "intensional" => {
            let k: usize = match parsed.or("k", "integer", 2) {
                Ok(k) => k,
                Err(e) => return usage_err(e, HELP),
            };
            let depth: usize = match parsed.or("depth", "integer", 2) {
                Ok(d) => d,
                Err(e) => return usage_err(e, HELP),
            };
            hdoutlier_baselines::intensional_outliers(
                &dataset,
                &hdoutlier_baselines::IntensionalConfig {
                    k,
                    max_depth: depth,
                    metric,
                    ..Default::default()
                },
            )
            .map(|result| {
                result
                    .outliers
                    .into_iter()
                    .map(|o| (o.row, o.subspace.len() as f64))
                    .collect()
            })
            .map_err(|e| e.to_string())
        }
        other => {
            return (
                exit::USAGE,
                format!("--method must be knn|lof|knorr-ng|intensional, got {other:?}\n\n{HELP}"),
            )
        }
    };

    drop(rank_span);
    let ranked = match ranked {
        Ok(r) => r,
        Err(e) => return (exit::RUNTIME, format!("baseline failed: {e}")),
    };

    let rendered = if parsed.has("json") {
        let j = ranked
            .iter()
            .map(|&(row, score)| Json::object().field("row", row).field("score", score))
            .collect::<Result<Vec<Json>, _>>()
            .and_then(|items| {
                Json::object()
                    .field("method", method)
                    .field("outliers", Json::Array(items))
            });
        match j {
            Ok(j) => j.pretty() + "\n",
            Err(e) => return (exit::RUNTIME, format!("failed to render ranking: {e}")),
        }
    } else {
        let mut out = format!("{method}: {} outlier(s)\n", ranked.len());
        for (row, score) in &ranked {
            out.push_str(&format!("  row {row:>6}  score {score:.4}\n"));
        }
        out
    };
    if let Err(e) = super::emit_report(sink, &rendered) {
        return (exit::RUNTIME, e);
    }
    match session.finish() {
        Ok(()) => (exit::OK, String::new()),
        Err(e) => (exit::RUNTIME, e),
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::planted_csv;
    use crate::exit;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn knn_baseline_runs() {
        let (path, _) = planted_csv("baseline-knn");
        let (code, out) = super::run_captured(&argv(&[
            "--method",
            "knn",
            "--top",
            "5",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK, "{out}");
        assert_eq!(out.lines().count(), 6); // header + 5 rows
    }

    #[test]
    fn lof_and_knorr_ng_run() {
        let (path, _) = planted_csv("baseline-lof");
        let (code, out) = super::run_captured(&argv(&[
            "--method=lof",
            "--k=5",
            "--top=3",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK, "{out}");
        let (code, out) = super::run_captured(&argv(&[
            "--method=knorr-ng",
            "--k=2",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK, "{out}");
    }

    #[test]
    fn intensional_method_runs() {
        let (path, _) = planted_csv("baseline-intensional");
        let (code, out) = super::run_captured(&argv(&[
            "--method=intensional",
            "--k=2",
            "--depth=2",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK, "{out}");
        assert!(out.starts_with("intensional:"), "{out}");
    }

    #[test]
    fn json_output_and_metric_choice() {
        let (path, _) = planted_csv("baseline-json");
        let (code, out) = super::run_captured(&argv(&[
            "--method=knn",
            "--metric=manhattan",
            "--json",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK);
        assert!(out.contains("\"method\": \"knn\""));
        assert!(out.contains("\"row\""));
    }

    #[test]
    fn usage_errors() {
        let (code, out) = super::run_captured(&argv(&["x.csv"]));
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("--method is required"));
        let (path, _) = planted_csv("baseline-err");
        let (code, out) = super::run_captured(&argv(&["--method=magic", path.to_str().unwrap()]));
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("knn|lof|knorr-ng|intensional"));
        let (code, out) = super::run_captured(&argv(&[
            "--method=knn",
            "--metric=cosine",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("euclidean"));
    }

    #[test]
    fn missing_values_without_impute_is_a_runtime_error() {
        // Write a CSV with an explicit NaN cell.
        let dir = std::env::temp_dir().join("hdoutlier-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline-missing.csv");
        std::fs::write(&path, "a,b\n1,2\nNaN,4\n5,6\n7,8\n").unwrap();
        let (code, out) = super::run_captured(&argv(&["--method=knn", path.to_str().unwrap()]));
        assert_eq!(code, exit::RUNTIME);
        assert!(out.contains("missing"), "{out}");
        // With --impute it succeeds.
        let (code, _) = super::run_captured(&argv(&[
            "--method=knn",
            "--impute",
            "--top=2",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK);
    }
}
