//! `hdoutlier score` — score new records against a saved model, without the
//! training data.

use super::{load_dataset, parse_or_usage};
use crate::exit;
use crate::json::{FieldChain, Json};
use crate::model_io;
use crate::obs_setup::{self, ObsSession};

/// Per-command help.
pub const HELP: &str = "\
hdoutlier score — score records against a model saved by `detect --save-model`

USAGE:
    hdoutlier score --model <model.json> [OPTIONS] <input.csv>

OPTIONS:
    --model <path>       model file (required)
    --label-column <c>   strip column <c> before scoring
    --delimiter <c>      field separator (default ',')
    --no-header          first row is data
    --json               emit JSON
    --all                print every record (default: only outliers)
    --log-level <l>      emit pipeline events on stderr (error|warn|info|debug|trace)
    --log-json           render events as NDJSON instead of human-readable text
    --metrics-out <p>    enable timing metrics and write an NDJSON snapshot to <p>
    --trace-out <p>      profile spans, write Chrome trace-event JSON to <p>
    --profile-out <p>    sample span stacks, write folded flamegraph stacks to <p>
    --profile-hz <n>     sampling rate for --profile-out (default 99)
";

/// Runs the subcommand.
pub fn run(argv: &[String]) -> (i32, String) {
    let spec = obs_setup::spec_with(
        &["model", "label-column", "delimiter"],
        &["json", "all", "no-header"],
    );
    let parsed = match parse_or_usage(&spec, argv, HELP) {
        Ok(p) => p,
        Err(out) => return out,
    };
    let mut session = match ObsSession::init(&parsed) {
        Ok(s) => s,
        Err(e) => return (exit::USAGE, format!("{e}\n\n{HELP}")),
    };
    let Some(model_path) = parsed.get("model") else {
        return (exit::USAGE, format!("--model is required\n\n{HELP}"));
    };
    let text = match std::fs::read_to_string(model_path) {
        Ok(t) => t,
        Err(e) => return (exit::RUNTIME, format!("failed to read {model_path}: {e}")),
    };
    let model = match model_io::from_json_text(&text) {
        Ok(m) => m,
        Err(e) => return (exit::RUNTIME, format!("failed to load model: {e}")),
    };
    let dataset = match load_dataset(&parsed, HELP) {
        Ok(d) => d,
        Err(out) => return out,
    };
    if dataset.n_dims() != model.grid().n_dims() {
        return (
            exit::RUNTIME,
            format!(
                "data has {} attributes but the model was fitted on {}",
                dataset.n_dims(),
                model.grid().n_dims()
            ),
        );
    }

    let scores = match model.score_dataset(&dataset) {
        Ok(s) => s,
        Err(e) => return (exit::RUNTIME, format!("scoring failed: {e}")),
    };
    let show_all = parsed.has("all");
    let out = if parsed.has("json") {
        let j = scores
            .iter()
            .enumerate()
            .filter(|(_, s)| show_all || s.is_some())
            .map(|(row, s)| {
                Json::object()
                    .field("row", row)
                    .field("score", s.map_or(Json::Null, Json::Number))
            })
            .collect::<Result<Vec<Json>, _>>()
            .and_then(|items| {
                let mut j = Json::object()
                    .field("records", dataset.n_rows())
                    .field("outliers", scores.iter().filter(|s| s.is_some()).count())
                    .field("scored", Json::Array(items));
                if session.wants_metrics() {
                    j = j.field("metrics", obs_setup::metrics_json()?);
                }
                j
            });
        match j {
            Ok(j) => j.pretty() + "\n",
            Err(e) => return (exit::RUNTIME, format!("failed to render scores: {e}")),
        }
    } else {
        let mut out = format!(
            "{} of {} records match an abnormal projection\n",
            scores.iter().filter(|s| s.is_some()).count(),
            dataset.n_rows()
        );
        for (row, s) in scores.iter().enumerate() {
            match s {
                Some(score) => out.push_str(&format!("  row {row:>6}  S = {score:.3}\n")),
                None if show_all => out.push_str(&format!("  row {row:>6}  -\n")),
                None => {}
            }
        }
        out
    };
    if let Err(e) = session.finish() {
        return (exit::RUNTIME, e);
    }
    (exit::OK, out)
}

#[cfg(test)]
mod tests {
    use super::super::test_support::planted_csv;
    use crate::exit;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn save_model(name: &str) -> (std::path::PathBuf, std::path::PathBuf, Vec<usize>) {
        let (csv, planted_rows) = planted_csv(name);
        let model_path = csv.with_extension("model.json");
        let (code, out) = crate::commands::detect::run_captured(&argv(&[
            "--phi=4",
            "--k=2",
            "--m=6",
            "--search=brute",
            "--save-model",
            model_path.to_str().unwrap(),
            csv.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK, "{out}");
        (csv, model_path, planted_rows)
    }

    #[test]
    fn save_then_score_round_trip() {
        let (csv, model_path, planted_rows) = save_model("score-roundtrip");
        let (code, out) = super::run(&argv(&[
            "--model",
            model_path.to_str().unwrap(),
            csv.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK, "{out}");
        assert!(out.contains("match an abnormal projection"));
        // At least one planted row is flagged by the reloaded model.
        let hit = planted_rows
            .iter()
            .any(|r| out.contains(&format!("row {r:>6}")));
        assert!(hit, "{out}");
    }

    #[test]
    fn json_output_counts_match() {
        let (csv, model_path, _) = save_model("score-json");
        let (code, out) = super::run(&argv(&[
            "--model",
            model_path.to_str().unwrap(),
            "--json",
            csv.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK, "{out}");
        assert!(out.contains("\"outliers\""));
        assert!(out.contains("\"records\": 400"));
    }

    #[test]
    fn errors() {
        let (csv, model_path, _) = save_model("score-errors");
        let (code, out) = super::run(&argv(&[csv.to_str().unwrap()]));
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("--model is required"));
        let (code, _) = super::run(&argv(&["--model", "/nope.json", csv.to_str().unwrap()]));
        assert_eq!(code, exit::RUNTIME);
        // Model file that is not a model.
        let junk = csv.with_extension("junk.json");
        std::fs::write(&junk, "{\"format\": 1}").unwrap();
        let (code, out) = super::run(&argv(&[
            "--model",
            junk.to_str().unwrap(),
            csv.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::RUNTIME);
        assert!(out.contains("failed to load model"));
        // Dimensionality mismatch.
        let narrow = csv.with_extension("narrow.csv");
        std::fs::write(&narrow, "a,b\n1,2\n3,4\n").unwrap();
        let (code, out) = super::run(&argv(&[
            "--model",
            model_path.to_str().unwrap(),
            narrow.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::RUNTIME);
        assert!(out.contains("fitted on"));
    }
}
