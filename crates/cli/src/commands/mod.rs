//! The CLI subcommands. Each returns `(exit_code, output)` so the binary is
//! a one-liner and tests can drive the full path.

pub mod advise;
pub mod baseline;
pub mod detect;
pub mod explain;
pub mod scenario;
pub mod score;
pub mod serve;
pub mod stream;

use crate::args::{ArgError, Parsed, Spec};
use crate::exit;
use hdoutlier_data::csv::{ColumnRef, CsvOptions};
use hdoutlier_data::Dataset;

/// Parses with a spec, turning usage errors into `(USAGE, message + help)`.
pub(crate) fn parse_or_usage(
    spec: &Spec,
    argv: &[String],
    help: &str,
) -> Result<Parsed, (i32, String)> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        return Err((exit::OK, help.to_string()));
    }
    spec.parse(argv)
        .map_err(|e| (exit::USAGE, format!("{e}\n\n{help}")))
}

/// Renders an [`ArgError`] as a usage failure.
pub(crate) fn usage_err(e: ArgError, help: &str) -> (i32, String) {
    (exit::USAGE, format!("{e}\n\n{help}"))
}

/// Writes a rendered report to the command's sink. A consumer closing the
/// pipe early (`hdoutlier ... | head`) is a normal shutdown, not a failure;
/// any other write error is returned as runtime-error text.
pub(crate) fn emit_report(sink: &mut impl std::io::Write, rendered: &str) -> Result<(), String> {
    match sink
        .write_all(rendered.as_bytes())
        .and_then(|()| sink.flush())
    {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("stdout write failed: {e}")),
    }
}

/// Loads the dataset named by the positional argument, honoring the shared
/// input flags (`--no-header`, `--label-column`, `--delimiter`).
pub(crate) fn load_dataset(parsed: &Parsed, help: &str) -> Result<Dataset, (i32, String)> {
    let path = parsed
        .positional()
        .first()
        .ok_or_else(|| (exit::USAGE, format!("missing input CSV path\n\n{help}")))?;
    let delimiter = match parsed.get("delimiter") {
        None => ',',
        Some(d) if d.chars().count() == 1 => d.chars().next().expect("one char"),
        Some(d) => {
            return Err((
                exit::USAGE,
                format!("--delimiter must be a single character, got {d:?}\n\n{help}"),
            ))
        }
    };
    let options = CsvOptions {
        has_header: !parsed.has("no-header"),
        delimiter,
        label_column: parsed
            .get("label-column")
            .map(|name| match name.parse::<usize>() {
                Ok(idx) if !parsed.has("no-header") => ColumnRef::Name(idx.to_string()),
                Ok(idx) => ColumnRef::Index(idx),
                Err(_) => ColumnRef::Name(name.to_string()),
            }),
        ..CsvOptions::default()
    };
    hdoutlier_data::csv::read_path(path, &options)
        .map_err(|e| (exit::RUNTIME, format!("failed to read {path}: {e}")))
}

#[cfg(test)]
pub(crate) mod test_support {
    use hdoutlier_data::generators::{planted_outliers, PlantedConfig};

    /// Writes a small planted CSV to a temp path and returns it along with
    /// the planted rows.
    pub fn planted_csv(name: &str) -> (std::path::PathBuf, Vec<usize>) {
        let planted = planted_outliers(&PlantedConfig {
            n_rows: 400,
            n_dims: 6,
            n_outliers: 3,
            strong_groups: Some(2),
            seed: 31,
            ..PlantedConfig::default()
        });
        let dir = std::env::temp_dir().join("hdoutlier-cli-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("{name}.csv"));
        hdoutlier_data::csv::write_path(&planted.dataset, &path).expect("writable");
        (path, planted.outlier_rows)
    }
}
