//! `hdoutlier explain` — drill into one record: in which subspace views is
//! it abnormal?

use super::{load_dataset, parse_or_usage, usage_err};
use crate::exit;
use crate::json::{FieldChain, Json};
use crate::obs_setup::{self, ObsSession};
use hdoutlier_core::drill::record_profile_threaded;
use hdoutlier_core::params::advise;
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_index::BitmapCounter;

/// Per-command help.
pub const HELP: &str = "\
hdoutlier explain — rank every subspace view of one record by abnormality

USAGE:
    hdoutlier explain --row <n> [OPTIONS] <input.csv>

OPTIONS:
    --row <n>            record to profile (required, 0-based)
    --phi <n>            grid ranges per dimension (default: auto)
    --k <list>           view dimensionalities, comma separated (default 1,2)
    --top <n>            views to print (default 10)
    --threads <n>        worker threads for the view scoring (default:
                         available cores; identical output at any count)
    --label-column <c>   strip column <c> first
    --delimiter <c>      field separator (default ',')
    --no-header          first row is data
    --json               emit JSON
    --log-level <l>      emit pipeline events on stderr (error|warn|info|debug|trace)
    --log-json           render events as NDJSON instead of human-readable text
    --metrics-out <p>    enable timing metrics and write an NDJSON snapshot to <p>
    --trace-out <p>      profile spans, write Chrome trace-event JSON to <p>
    --profile-out <p>    sample span stacks, write folded flamegraph stacks to <p>
    --profile-hz <n>     sampling rate for --profile-out (default 99)
";

/// Runs the subcommand against stdout.
pub fn run(argv: &[String]) -> (i32, String) {
    let stdout = std::io::stdout();
    run_to(argv, &mut stdout.lock())
}

/// Runs the subcommand, collecting the report and any error text into one
/// string (the test entry point).
pub fn run_captured(argv: &[String]) -> (i32, String) {
    let mut sink = Vec::new();
    let (code, err) = run_to(argv, &mut sink);
    let mut out = String::from_utf8(sink).expect("reports are valid UTF-8");
    out.push_str(&err);
    (code, out)
}

/// The command core: the report goes to `sink` (a consumer closing the pipe
/// early — `| head` — is a normal shutdown); the returned string carries
/// only help or error text.
pub fn run_to(argv: &[String], sink: &mut impl std::io::Write) -> (i32, String) {
    let spec = obs_setup::spec_with(
        &[
            "row",
            "phi",
            "k",
            "top",
            "threads",
            "label-column",
            "delimiter",
        ],
        &["json", "no-header"],
    );
    let parsed = match parse_or_usage(&spec, argv, HELP) {
        Ok(p) => p,
        Err(out) => return out,
    };
    let mut session = match ObsSession::init(&parsed) {
        Ok(s) => s,
        Err(e) => return (exit::USAGE, format!("{e}\n\n{HELP}")),
    };
    let row: usize = match parsed.required("row", "integer") {
        Ok(r) => r,
        Err(e) => return usage_err(e, HELP),
    };
    let top: usize = match parsed.or("top", "integer", 10) {
        Ok(t) => t,
        Err(e) => return usage_err(e, HELP),
    };
    let threads: usize = match parsed.or("threads", "integer", hdoutlier_pool::default_threads()) {
        Ok(t) if t >= 1 => t,
        Ok(_) => return (exit::USAGE, format!("--threads must be >= 1\n\n{HELP}")),
        Err(e) => return usage_err(e, HELP),
    };
    let ks: Vec<usize> = match parsed.get("k") {
        None => vec![1, 2],
        Some(raw) => {
            let parsed_ks: Result<Vec<usize>, _> =
                raw.split(',').map(|p| p.trim().parse()).collect();
            match parsed_ks {
                Ok(ks) if !ks.is_empty() => ks,
                _ => {
                    return (
                        exit::USAGE,
                        format!("--k must be a comma-separated list of integers\n\n{HELP}"),
                    )
                }
            }
        }
    };

    let dataset = match load_dataset(&parsed, HELP) {
        Ok(d) => d,
        Err(out) => return out,
    };
    if row >= dataset.n_rows() {
        return (
            exit::RUNTIME,
            format!("row {row} out of bounds ({} records)", dataset.n_rows()),
        );
    }
    let phi = match parsed.opt::<u32>("phi", "integer") {
        Ok(Some(p)) => p,
        Ok(None) => advise(dataset.n_rows() as u64, -3.0).phi,
        Err(e) => return usage_err(e, HELP),
    };
    let disc = match Discretized::new(&dataset, phi, DiscretizeStrategy::EquiDepth) {
        Ok(d) => d,
        Err(e) => return (exit::RUNTIME, format!("discretization failed: {e}")),
    };
    let present = disc
        .row(row)
        .iter()
        .filter(|&&c| c != hdoutlier_data::discretize::MISSING_CELL)
        .count();
    if let Some(&bad) = ks.iter().find(|&&k| k == 0 || k > present) {
        return (
            exit::RUNTIME,
            format!("k = {bad} out of range: record {row} has {present} present attributes"),
        );
    }
    let counter = BitmapCounter::new(&disc);
    let profile = {
        let _span = hdoutlier_obs::span(
            hdoutlier_obs::Level::Info,
            "hdoutlier.cli",
            "record_profile",
        );
        record_profile_threaded(&counter, &disc, row, &ks, threads)
    };

    let rendered = if parsed.has("json") {
        let j = profile
            .iter()
            .take(top)
            .map(|v| {
                Json::object()
                    .field(
                        "dims",
                        v.cube
                            .dims()
                            .iter()
                            .map(|&d| d as usize)
                            .collect::<Vec<_>>(),
                    )
                    .field("count", v.count)
                    .field("sparsity", v.sparsity)
                    .field("exact_significance", v.exact_significance)
            })
            .collect::<Result<Vec<Json>, _>>()
            .and_then(|items| {
                Json::object()
                    .field("row", row)
                    .field("views_total", profile.len())
                    .field("views", Json::Array(items))
            });
        match j {
            Ok(j) => j.pretty() + "\n",
            Err(e) => return (exit::RUNTIME, format!("failed to render profile: {e}")),
        }
    } else {
        let mut out = format!(
            "record {row}: {} views across k = {ks:?}, most abnormal first\n\n",
            profile.len()
        );
        for v in profile.iter().take(top) {
            let dims: Vec<String> = v
                .cube
                .dims()
                .iter()
                .map(|&d| disc.name(d as usize).to_string())
                .collect();
            out.push_str(&format!(
                "  [{}]  count {:>4}  S = {:>7.2}  exact P = {:.3e}\n",
                dims.join(", "),
                v.count,
                v.sparsity,
                v.exact_significance
            ));
        }
        out
    };
    if let Err(e) = super::emit_report(sink, &rendered) {
        return (exit::RUNTIME, e);
    }
    match session.finish() {
        Ok(()) => (exit::OK, String::new()),
        Err(e) => (exit::RUNTIME, e),
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::planted_csv;
    use crate::exit;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn profiles_a_planted_outlier() {
        let (path, planted_rows) = planted_csv("explain-basic");
        let row = planted_rows[0].to_string();
        let (code, out) = super::run_captured(&argv(&[
            "--row",
            &row,
            "--phi=4",
            "--k=2",
            "--top=3",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK, "{out}");
        assert!(out.contains("most abnormal first"), "{out}");
        // Top view should be strongly negative for a planted contrarian.
        assert!(out.contains("S = "), "{out}");
    }

    #[test]
    fn json_output() {
        let (path, _) = planted_csv("explain-json");
        let (code, out) = super::run_captured(&argv(&[
            "--row=0",
            "--phi=4",
            "--k=1,2",
            "--json",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, exit::OK, "{out}");
        assert!(out.contains("\"views_total\": 21")); // C(6,1)+C(6,2)
        assert!(out.contains("\"exact_significance\""));
    }

    #[test]
    fn errors() {
        let (path, _) = planted_csv("explain-errors");
        let (code, out) = super::run_captured(&argv(&[path.to_str().unwrap()]));
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("--row"));
        let (code, out) = super::run_captured(&argv(&["--row=99999", path.to_str().unwrap()]));
        assert_eq!(code, exit::RUNTIME);
        assert!(out.contains("out of bounds"));
        let (code, out) = super::run_captured(&argv(&["--row=0", "--k=0", path.to_str().unwrap()]));
        assert_eq!(code, exit::RUNTIME);
        assert!(out.contains("out of range"));
        let (code, out) =
            super::run_captured(&argv(&["--row=0", "--k=a,b", path.to_str().unwrap()]));
        assert_eq!(code, exit::USAGE);
        assert!(out.contains("comma-separated"));
    }
}
