//! The `hdoutlier` binary: argument vector in, `(exit code, output)` out.
//! All logic lives in the library so it is testable.

use std::io::Write;

// Counting wrapper over the system allocator: feeds the
// `hdoutlier.alloc.*` gauges and lets `--profile-out` attribute allocated
// bytes to live spans. Installed only in the shipped binary — the bench
// binaries measure the unwrapped allocator.
#[global_allocator]
static ALLOC: hdoutlier_obs::CountingAllocator = hdoutlier_obs::CountingAllocator;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let (code, output) = hdoutlier_cli::run_to(&argv, &mut out);
    let result = if code == hdoutlier_cli::exit::OK {
        out.write_all(output.as_bytes()).and_then(|()| out.flush())
    } else {
        let mut err = std::io::stderr();
        err.write_all(output.as_bytes()).and_then(|()| err.flush())
    };
    if let Err(e) = result {
        // A consumer closing the pipe early (`hdoutlier ... | head`) is a
        // normal shutdown, not an error worth a panic or a message.
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            let _ = writeln!(std::io::stderr(), "write failed: {e}");
            std::process::exit(hdoutlier_cli::exit::RUNTIME);
        }
    }
    std::process::exit(code);
}
