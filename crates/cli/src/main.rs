//! The `hdoutlier` binary: argument vector in, `(exit code, output)` out.
//! All logic lives in the library so it is testable.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (code, output) = hdoutlier_cli::run(&argv);
    if code == hdoutlier_cli::exit::OK {
        print!("{output}");
    } else {
        eprint!("{output}");
    }
    std::process::exit(code);
}
