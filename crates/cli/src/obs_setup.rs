//! Shared observability plumbing for the subcommands: the `--log-level`,
//! `--log-json`, `--metrics-out`, `--trace-out`, `--profile-out`, and
//! `--profile-hz` flags (plus `--serve-metrics` where a command opts in),
//! dispatcher setup/teardown, and the metrics snapshot renderers used by
//! reports.

use crate::args::{Parsed, Spec};
use crate::json::{FieldChain, Json, JsonError};
use hdoutlier_obs as obs;
use std::sync::Arc;
use std::time::Duration;

/// Help text for the shared flags; appended to each subcommand's OPTIONS.
pub const HELP: &str = "\
    --log-level <l>      emit pipeline events on stderr at error|warn|info|debug|trace
    --log-json           render events as NDJSON instead of human-readable text
    --metrics-out <p>    enable timing metrics and write a final NDJSON snapshot to <p>
    --trace-out <p>      profile spans and write Chrome trace-event JSON to <p>
    --profile-out <p>    sample span stacks while the command runs and write
                         folded (flamegraph) stacks to <p>
    --profile-hz <n>     sampling rate for --profile-out (default 99, max 1000)
";

/// Help text for `--serve-metrics`; appended by the commands that declare
/// the flag (`stream`, `detect`).
pub const SERVE_HELP: &str = "\
    --serve-metrics <a>  serve /metrics, /healthz, /snapshot over HTTP on <a>
                         (e.g. 127.0.0.1:9184; port 0 picks one, echoed on stderr)
";

/// Builds a [`Spec`] from a subcommand's own flags plus the shared
/// observability flags. Commands that also want the live endpoint declare
/// `"serve-metrics"` in their own `value_flags`.
pub fn spec_with(value_flags: &[&'static str], bool_flags: &[&'static str]) -> Spec {
    let mut values = value_flags.to_vec();
    values.extend_from_slice(&[
        "log-level",
        "metrics-out",
        "trace-out",
        "profile-out",
        "profile-hz",
    ]);
    let mut bools = bool_flags.to_vec();
    bools.push("log-json");
    Spec::new(&values, &bools)
}

/// One command invocation's observability state. [`ObsSession::init`]
/// configures the process-global dispatcher from the parsed flags and
/// starts the live endpoint / trace collection when requested;
/// [`ObsSession::finish`] writes the exports and joins the server.
#[derive(Debug)]
pub struct ObsSession {
    metrics_out: Option<String>,
    trace_out: Option<String>,
    trace: Option<Arc<obs::TraceBuffer>>,
    server: Option<obs::MetricsServer>,
    profile_out: Option<String>,
    profile: Option<obs::ProfileSession>,
}

impl ObsSession {
    /// Applies the observability flags. Always (re)sets the global
    /// dispatcher, timing gate, and trace buffer — including turning them
    /// *off* when the flags are absent — so successive in-process runs are
    /// deterministic. With `--serve-metrics <addr>` the telemetry server
    /// starts here and its bound address is echoed on stderr (the address
    /// matters when port 0 asked for an ephemeral one).
    ///
    /// # Errors
    /// A usage message when `--log-level` is not a recognized level or the
    /// `--serve-metrics` address cannot be bound.
    pub fn init(parsed: &Parsed) -> Result<Self, String> {
        let level: Option<obs::Level> = match parsed.get("log-level") {
            Some(text) => Some(text.parse().map_err(|e| format!("--log-level: {e}"))?),
            None => None,
        };
        let json = parsed.has("log-json");
        if level.is_some() || json {
            let sink: Arc<dyn obs::Sink> = if json {
                Arc::new(obs::NdjsonSink::stderr())
            } else {
                Arc::new(obs::StderrSink)
            };
            obs::install(sink, level.unwrap_or(obs::Level::Info));
        } else {
            obs::uninstall();
        }
        let metrics_out = parsed.get("metrics-out").map(str::to_string);
        let trace_out = parsed.get("trace-out").map(str::to_string);
        let trace = trace_out.as_ref().map(|_| {
            let buffer = Arc::new(obs::TraceBuffer::new());
            obs::set_trace_buffer(Some(Arc::clone(&buffer)));
            buffer
        });
        if trace.is_none() {
            obs::set_trace_buffer(None);
        }
        // `serve-metrics` is declared only by stream/detect; on other
        // commands the lookup is simply absent.
        let server = match parsed.get("serve-metrics") {
            Some(addr) => {
                let server = obs::MetricsServer::serve(addr, obs::registry())
                    .map_err(|e| format!("--serve-metrics {addr}: {e}"))?;
                eprintln!(
                    "telemetry: serving http://{}/metrics (also /healthz, /snapshot)",
                    server.local_addr()
                );
                Some(server)
            }
            None => None,
        };
        // Hot paths (per-record stream latency, GA stage timers) read this
        // gate before touching the clock. A live scrape wants latency
        // histograms populated, so serving implies timing.
        obs::set_timing(
            metrics_out.is_some() || server.is_some() || obs::enabled(obs::Level::Debug),
        );
        let profile_out = parsed.get("profile-out").map(str::to_string);
        let profile_hz = match parsed.get("profile-hz") {
            Some(text) => {
                if profile_out.is_none() {
                    return Err("--profile-hz requires --profile-out".to_string());
                }
                let hz: u32 = text
                    .parse()
                    .map_err(|_| format!("--profile-hz: not a number: {text}"))?;
                if hz == 0 {
                    return Err("--profile-hz: must be at least 1".to_string());
                }
                hz
            }
            None => 99,
        };
        let profile = profile_out
            .as_ref()
            .map(|_| obs::ProfileSession::start(profile_hz));
        Ok(ObsSession {
            metrics_out,
            trace_out,
            trace,
            server,
            profile_out,
            profile,
        })
    }

    /// Whether a metrics snapshot was requested (`--metrics-out`).
    pub fn wants_metrics(&self) -> bool {
        self.metrics_out.is_some()
    }

    /// Writes the requested exports (metrics NDJSON, Chrome trace JSON),
    /// detaches the trace buffer, and shuts the telemetry server down.
    /// Idempotent: a second call is a no-op, so error paths that already
    /// finished can return freely.
    ///
    /// # Errors
    /// A runtime message when an export file cannot be written.
    pub fn finish(&mut self) -> Result<(), String> {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        // The profiler stops before the metrics snapshot so the
        // `hdoutlier.profile.*` counters it publishes on shutdown land in
        // the `--metrics-out` export of the same run.
        if let Some(session) = self.profile.take() {
            let report = session.stop();
            if let Some(path) = self.profile_out.take() {
                std::fs::write(&path, report.to_folded())
                    .map_err(|e| format!("failed to write profile {path}: {e}"))?;
                // The allocation-weighted twin only exists when the counting
                // allocator attributed bytes (it is installed in the shipped
                // binary, not in every embedder of this crate).
                if report.has_bytes() {
                    let bytes_path = format!("{path}.bytes");
                    std::fs::write(&bytes_path, report.to_folded_bytes())
                        .map_err(|e| format!("failed to write profile {bytes_path}: {e}"))?;
                }
            }
        }
        if let Some(path) = self.metrics_out.take() {
            std::fs::write(&path, obs::registry().snapshot_ndjson())
                .map_err(|e| format!("failed to write metrics {path}: {e}"))?;
        }
        if let Some(buffer) = self.trace.take() {
            obs::set_trace_buffer(None);
            if let Some(path) = self.trace_out.take() {
                std::fs::write(&path, buffer.to_chrome_json())
                    .map_err(|e| format!("failed to write trace {path}: {e}"))?;
                if buffer.dropped() > 0 {
                    eprintln!(
                        "telemetry: trace buffer overflowed; {} events dropped",
                        buffer.dropped()
                    );
                }
            }
        }
        Ok(())
    }
}

/// Milliseconds in a duration — the single definition both the text and
/// JSON report renderers share.
pub fn elapsed_ms(elapsed: Duration) -> f64 {
    elapsed.as_secs_f64() * 1e3
}

/// Human rendering of [`elapsed_ms`], e.g. `"12.345 ms"`.
pub fn fmt_elapsed(elapsed: Duration) -> String {
    format!("{:.3} ms", elapsed_ms(elapsed))
}

/// The global metrics registry as a JSON object keyed by metric name, for
/// embedding in `--json` reports. Labeled series are keyed
/// `name{k=v,…}` so every label set stays addressable without colliding.
///
/// # Errors
/// [`JsonError`] only on internal builder misuse (never for valid metrics).
pub fn metrics_json() -> Result<Json, JsonError> {
    let mut object = Json::object();
    for metric in obs::registry().snapshot() {
        let key = if metric.labels.is_empty() {
            metric.name.clone()
        } else {
            let pairs: Vec<String> = metric
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            format!("{}{{{}}}", metric.name, pairs.join(","))
        };
        let value = match metric.value {
            obs::SnapshotValue::Counter(v) => Json::Number(v as f64),
            obs::SnapshotValue::Gauge(v) => Json::Number(v as f64),
            obs::SnapshotValue::Histogram(h) => Json::object()
                .field("count", h.count)
                .field("sum", h.sum)
                .field("min", h.min)
                .field("max", h.max)
                .field("mean", h.mean())
                .field("p50", h.p50)
                .field("p90", h.p90)
                .field("p99", h.p99)?,
        };
        object = object.field(&key, value)?;
    }
    Ok(object)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn spec_accepts_shared_flags() {
        let spec = spec_with(&["phi"], &["json"]);
        let parsed = spec
            .parse(&argv(&[
                "--phi=4",
                "--log-level",
                "debug",
                "--log-json",
                "--metrics-out",
                "/tmp/m.ndjson",
                "--trace-out",
                "/tmp/t.json",
            ]))
            .unwrap();
        assert_eq!(parsed.get("log-level"), Some("debug"));
        assert!(parsed.has("log-json"));
        assert_eq!(parsed.get("trace-out"), Some("/tmp/t.json"));
        // `serve-metrics` is opt-in per command, not part of the shared set.
        assert!(spec_with(&[], &[])
            .parse(&argv(&["--serve-metrics", "x"]))
            .is_err());
        let spec = spec_with(&["serve-metrics"], &[]);
        let parsed = spec
            .parse(&argv(&["--serve-metrics", "127.0.0.1:0"]))
            .unwrap();
        assert_eq!(parsed.get("serve-metrics"), Some("127.0.0.1:0"));
    }

    #[test]
    fn trace_out_writes_chrome_trace_json() {
        let dir = std::env::temp_dir().join("hdoutlier-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("obs-setup-trace.json");
        let spec = spec_with(&[], &[]);
        let parsed = spec
            .parse(&argv(&["--trace-out", path.to_str().unwrap()]))
            .unwrap();
        let mut session = ObsSession::init(&parsed).unwrap();
        session.finish().unwrap();
        // A second finish is a no-op, not a rewrite or panic.
        session.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // The trace buffer is process-global and parallel tests may swap it,
        // so assert the file's shape, not its span content (the spawned-
        // binary integration tests cover content in a clean process).
        let j = Json::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(j.get("traceEvents").is_some(), "{text}");
    }

    #[test]
    fn serve_metrics_binds_echoes_and_shuts_down() {
        let spec = spec_with(&["serve-metrics"], &[]);
        let parsed = spec
            .parse(&argv(&["--serve-metrics", "127.0.0.1:0"]))
            .unwrap();
        let mut session = ObsSession::init(&parsed).unwrap();
        session.finish().unwrap();
        // An unbindable address is an init error, not a panic.
        let parsed = spec
            .parse(&argv(&["--serve-metrics", "256.0.0.1:bogus"]))
            .unwrap();
        let err = ObsSession::init(&parsed).unwrap_err();
        assert!(err.contains("--serve-metrics"), "{err}");
    }

    #[test]
    fn init_rejects_bad_level_and_accepts_good() {
        let spec = spec_with(&[], &[]);
        let parsed = spec.parse(&argv(&["--log-level", "shouting"])).unwrap();
        let err = ObsSession::init(&parsed).unwrap_err();
        assert!(err.contains("shouting"), "{err}");

        // Dispatcher state is process-global and other tests run in
        // parallel, so assert only on per-session state here; the
        // dispatcher lifecycle is covered in hdoutlier-obs itself.
        let parsed = spec.parse(&argv(&["--log-level", "warn"])).unwrap();
        let session = ObsSession::init(&parsed).unwrap();
        assert!(!session.wants_metrics());

        let parsed = spec
            .parse(&argv(&["--metrics-out", "/tmp/unused.ndjson"]))
            .unwrap();
        let session = ObsSession::init(&parsed).unwrap();
        assert!(session.wants_metrics());

        let parsed = spec.parse(&argv(&[])).unwrap();
        let _ = ObsSession::init(&parsed).unwrap();
    }

    #[test]
    fn profile_out_writes_folded_stacks_and_validates_flags() {
        let dir = std::env::temp_dir().join("hdoutlier-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("obs-setup-profile.folded");
        let spec = spec_with(&[], &[]);
        let parsed = spec
            .parse(&argv(&[
                "--profile-out",
                path.to_str().unwrap(),
                "--profile-hz",
                "500",
            ]))
            .unwrap();
        let mut session = ObsSession::init(&parsed).unwrap();
        // Hold a span across a few sampler ticks so the folded output has
        // at least one named frame.
        {
            let _g = obs::profile_span("hdoutlier.cli.test", "obs_setup_profile");
            std::thread::sleep(Duration::from_millis(30));
        }
        session.finish().unwrap();
        session.finish().unwrap(); // idempotent
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines().all(|l| l
                .rsplit_once(' ')
                .is_some_and(|(_, n)| n.parse::<u64>().is_ok())),
            "folded lines end in a count: {text:?}"
        );

        // Flag validation: hz without a sink, zero, and garbage all fail
        // at init with a usage message naming the flag.
        for bad in [
            vec!["--profile-hz", "99"],
            vec!["--profile-out", "/tmp/p.folded", "--profile-hz", "0"],
            vec!["--profile-out", "/tmp/p.folded", "--profile-hz", "fast"],
        ] {
            let parsed = spec.parse(&argv(&bad)).unwrap();
            let err = ObsSession::init(&parsed).unwrap_err();
            assert!(err.contains("--profile-hz"), "{err}");
        }
    }

    #[test]
    fn metrics_json_renders_registered_metrics() {
        obs::registry().counter("hdoutlier.test.obs_setup").inc();
        let j = metrics_json().unwrap();
        assert!(j.get("hdoutlier.test.obs_setup").is_some());
        // Valid JSON end to end.
        assert!(Json::parse(&j.render()).is_ok());
    }

    #[test]
    fn elapsed_helpers_agree() {
        let d = Duration::from_micros(12_345);
        assert!((elapsed_ms(d) - 12.345).abs() < 1e-9);
        assert_eq!(fmt_elapsed(d), "12.345 ms");
    }
}
