//! Shared observability plumbing for the subcommands: the `--log-level`,
//! `--log-json`, and `--metrics-out` flags, dispatcher setup/teardown, and
//! the metrics snapshot renderers used by reports.

use crate::args::{Parsed, Spec};
use crate::json::{FieldChain, Json, JsonError};
use hdoutlier_obs as obs;
use std::sync::Arc;
use std::time::Duration;

/// Help text for the shared flags; appended to each subcommand's OPTIONS.
pub const HELP: &str = "\
    --log-level <l>      emit pipeline events on stderr at error|warn|info|debug|trace
    --log-json           render events as NDJSON instead of human-readable text
    --metrics-out <p>    enable timing metrics and write a final NDJSON snapshot to <p>
";

/// Builds a [`Spec`] from a subcommand's own flags plus the shared
/// observability flags.
pub fn spec_with(value_flags: &[&'static str], bool_flags: &[&'static str]) -> Spec {
    let mut values = value_flags.to_vec();
    values.extend_from_slice(&["log-level", "metrics-out"]);
    let mut bools = bool_flags.to_vec();
    bools.push("log-json");
    Spec::new(&values, &bools)
}

/// One command invocation's observability state. [`ObsSession::init`]
/// configures the process-global dispatcher from the parsed flags;
/// [`ObsSession::finish`] writes the metrics snapshot if one was requested.
#[derive(Debug)]
pub struct ObsSession {
    metrics_out: Option<String>,
}

impl ObsSession {
    /// Applies the observability flags. Always (re)sets the global
    /// dispatcher and timing gate — including turning them *off* when the
    /// flags are absent — so successive in-process runs are deterministic.
    ///
    /// # Errors
    /// A usage message when `--log-level` is not a recognized level.
    pub fn init(parsed: &Parsed) -> Result<Self, String> {
        let level: Option<obs::Level> = match parsed.get("log-level") {
            Some(text) => Some(text.parse().map_err(|e| format!("--log-level: {e}"))?),
            None => None,
        };
        let json = parsed.has("log-json");
        if level.is_some() || json {
            let sink: Arc<dyn obs::Sink> = if json {
                Arc::new(obs::NdjsonSink::stderr())
            } else {
                Arc::new(obs::StderrSink)
            };
            obs::install(sink, level.unwrap_or(obs::Level::Info));
        } else {
            obs::uninstall();
        }
        let metrics_out = parsed.get("metrics-out").map(str::to_string);
        // Hot paths (per-record stream latency, GA stage timers) read this
        // gate before touching the clock.
        obs::set_timing(metrics_out.is_some() || obs::enabled(obs::Level::Debug));
        Ok(ObsSession { metrics_out })
    }

    /// Whether a metrics snapshot was requested (`--metrics-out`).
    pub fn wants_metrics(&self) -> bool {
        self.metrics_out.is_some()
    }

    /// Writes the registry snapshot as NDJSON to the requested path (a
    /// no-op without `--metrics-out`).
    ///
    /// # Errors
    /// A runtime message when the file cannot be written.
    pub fn finish(&self) -> Result<(), String> {
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, obs::registry().snapshot_ndjson())
                .map_err(|e| format!("failed to write metrics {path}: {e}"))?;
        }
        Ok(())
    }
}

/// Milliseconds in a duration — the single definition both the text and
/// JSON report renderers share.
pub fn elapsed_ms(elapsed: Duration) -> f64 {
    elapsed.as_secs_f64() * 1e3
}

/// Human rendering of [`elapsed_ms`], e.g. `"12.345 ms"`.
pub fn fmt_elapsed(elapsed: Duration) -> String {
    format!("{:.3} ms", elapsed_ms(elapsed))
}

/// The global metrics registry as a JSON object keyed by metric name, for
/// embedding in `--json` reports.
///
/// # Errors
/// [`JsonError`] only on internal builder misuse (never for valid metrics).
pub fn metrics_json() -> Result<Json, JsonError> {
    let mut object = Json::object();
    for metric in obs::registry().snapshot() {
        let value = match metric.value {
            obs::SnapshotValue::Counter(v) => Json::Number(v as f64),
            obs::SnapshotValue::Gauge(v) => Json::Number(v as f64),
            obs::SnapshotValue::Histogram(h) => Json::object()
                .field("count", h.count)
                .field("sum", h.sum)
                .field("min", h.min)
                .field("max", h.max)
                .field("mean", h.mean())
                .field("p50", h.p50)
                .field("p90", h.p90)
                .field("p99", h.p99)?,
        };
        object = object.field(&metric.name, value)?;
    }
    Ok(object)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn spec_accepts_shared_flags() {
        let spec = spec_with(&["phi"], &["json"]);
        let parsed = spec
            .parse(&argv(&[
                "--phi=4",
                "--log-level",
                "debug",
                "--log-json",
                "--metrics-out",
                "/tmp/m.ndjson",
            ]))
            .unwrap();
        assert_eq!(parsed.get("log-level"), Some("debug"));
        assert!(parsed.has("log-json"));
    }

    #[test]
    fn init_rejects_bad_level_and_accepts_good() {
        let spec = spec_with(&[], &[]);
        let parsed = spec.parse(&argv(&["--log-level", "shouting"])).unwrap();
        let err = ObsSession::init(&parsed).unwrap_err();
        assert!(err.contains("shouting"), "{err}");

        // Dispatcher state is process-global and other tests run in
        // parallel, so assert only on per-session state here; the
        // dispatcher lifecycle is covered in hdoutlier-obs itself.
        let parsed = spec.parse(&argv(&["--log-level", "warn"])).unwrap();
        let session = ObsSession::init(&parsed).unwrap();
        assert!(!session.wants_metrics());

        let parsed = spec
            .parse(&argv(&["--metrics-out", "/tmp/unused.ndjson"]))
            .unwrap();
        let session = ObsSession::init(&parsed).unwrap();
        assert!(session.wants_metrics());

        let parsed = spec.parse(&argv(&[])).unwrap();
        let _ = ObsSession::init(&parsed).unwrap();
    }

    #[test]
    fn metrics_json_renders_registered_metrics() {
        obs::registry().counter("hdoutlier.test.obs_setup").inc();
        let j = metrics_json().unwrap();
        assert!(j.get("hdoutlier.test.obs_setup").is_some());
        // Valid JSON end to end.
        assert!(Json::parse(&j.render()).is_ok());
    }

    #[test]
    fn elapsed_helpers_agree() {
        let d = Duration::from_micros(12_345);
        assert!((elapsed_ms(d) - 12.345).abs() < 1e-9);
        assert_eq!(fmt_elapsed(d), "12.345 ms");
    }
}
