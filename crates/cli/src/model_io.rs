//! Re-export of the workspace model-persistence module.
//!
//! `model_io` began life here in the CLI; it moved to
//! [`hdoutlier_stream::model_io`] when the `serve` network server also
//! needed to load models from JSON. This shim keeps the historical
//! `crate::model_io::*` paths (and external `hdoutlier_cli::model_io`
//! users) working unchanged.

pub use hdoutlier_stream::model_io::*;
