//! Fault-injection harness for `hdoutlier stream`: scripted readers and
//! writers drive `run_streaming` through I/O failures, corrupt records,
//! consumer hang-ups, and kill/resume cycles, proving every `--on-error`
//! policy path, the circuit breaker, and checkpoint atomicity end to end.

use hdoutlier_cli::commands::stream;
use hdoutlier_cli::exit;
use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_stream::checkpoint::staging_path;
use hdoutlier_stream::Checkpoint;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// A reader that replays a script of chunks and injected `io::Error`s —
/// mid-line truncation, garbage bytes, transient failures at exact offsets.
struct FaultyReader {
    script: VecDeque<Result<Vec<u8>, io::ErrorKind>>,
}

impl FaultyReader {
    fn new(script: Vec<Result<Vec<u8>, io::ErrorKind>>) -> io::BufReader<Self> {
        io::BufReader::new(Self {
            script: script.into(),
        })
    }
}

impl Read for FaultyReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.script.pop_front() {
            None => Ok(0),
            Some(Err(kind)) => Err(kind.into()),
            Some(Ok(bytes)) => {
                assert!(bytes.len() <= buf.len(), "script chunk exceeds read buffer");
                buf[..bytes.len()].copy_from_slice(&bytes);
                Ok(bytes.len())
            }
        }
    }
}

/// A writer that accepts `fail_after_lines` complete verdict lines, then
/// fails every subsequent write with the scripted error kind.
struct FaultyWriter {
    buf: Vec<u8>,
    fail_after_lines: usize,
    lines: usize,
    kind: io::ErrorKind,
}

impl FaultyWriter {
    fn new(fail_after_lines: usize, kind: io::ErrorKind) -> Self {
        Self {
            buf: Vec::new(),
            fail_after_lines,
            lines: 0,
            kind,
        }
    }

    fn text(&self) -> String {
        String::from_utf8(self.buf.clone()).expect("verdicts are valid UTF-8")
    }
}

impl Write for FaultyWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if self.lines >= self.fail_after_lines {
            return Err(self.kind.into());
        }
        self.buf.extend_from_slice(data);
        self.lines += data.iter().filter(|&&b| b == b'\n').count();
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("hdoutlier-cli-faults");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Trains a model on a planted dataset and returns its path plus the
/// headerless CSV data lines (the stream input).
fn train(name: &str, seed: u64) -> (PathBuf, Vec<String>) {
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 400,
        n_dims: 6,
        n_outliers: 3,
        strong_groups: Some(2),
        seed,
        ..PlantedConfig::default()
    });
    let dir = temp_dir();
    let csv = dir.join(format!("{name}.csv"));
    hdoutlier_data::csv::write_path(&planted.dataset, &csv).expect("writable");
    let model = dir.join(format!("{name}.model.json"));
    let (code, out) = hdoutlier_cli::run(&argv(&[
        "detect",
        "--phi=4",
        "--k=2",
        "--m=6",
        "--search=brute",
        "--save-model",
        model.to_str().unwrap(),
        csv.to_str().unwrap(),
    ]));
    assert_eq!(code, exit::OK, "{out}");
    let text = std::fs::read_to_string(&csv).unwrap();
    let lines = text.lines().skip(1).map(str::to_string).collect();
    (model, lines)
}

fn stream_args(model: &Path, extra: &[&str]) -> Vec<String> {
    let mut args = argv(&["--model", model.to_str().unwrap(), "--no-header"]);
    args.extend(extra.iter().map(|s| s.to_string()));
    args
}

/// The acceptance scenario: a 10k-record stream with 5% corrupt lines under
/// `--on-error skip` yields exactly the clean stream's verdicts for the good
/// records (drift reports included), one error verdict per corrupt line, and
/// exit 0.
#[test]
fn skip_policy_on_10k_stream_with_5pct_corruption_matches_clean_run() {
    let (model, lines) = train("skip-10k", 61);
    let corrupt_kinds = [
        "total garbage",            // unparseable, wrong shape
        "1,2,3",                    // too few fields
        "1,2,3,4,5,banana",         // non-numeric field
        "\"unterminated,1,2,3,4,5", // malformed CSV quoting
    ];
    let mut clean = String::new();
    let mut dirty = String::new();
    let mut n_corrupt = 0usize;
    for i in 0..10_000 {
        let line = &lines[i % lines.len()];
        clean.push_str(line);
        clean.push('\n');
        dirty.push_str(line);
        dirty.push('\n');
        if (i + 1) % 20 == 0 {
            dirty.push_str(corrupt_kinds[n_corrupt % corrupt_kinds.len()]);
            dirty.push('\n');
            n_corrupt += 1;
        }
    }
    assert_eq!(n_corrupt, 500); // 5% of 10k

    let (code, reference) = stream::run_with_input(
        &stream_args(&model, &["--drift-every", "1000"]),
        clean.as_bytes(),
    );
    assert_eq!(code, exit::OK, "{reference}");

    let (code, out) = stream::run_with_input(
        &stream_args(&model, &["--drift-every", "1000", "--on-error", "skip"]),
        dirty.as_bytes(),
    );
    assert_eq!(code, exit::OK);

    let (errors, verdicts): (Vec<&str>, Vec<&str>) =
        out.lines().partition(|l| l.contains("\"error\":"));
    assert_eq!(errors.len(), n_corrupt);
    assert!(errors.iter().all(|l| l.contains("\"action\":\"skip\"")));
    // Good records come out byte-identical to the clean run, error verdicts
    // interleaved but never perturbing scores, indices, or drift reports.
    let expected: Vec<&str> = reference.lines().collect();
    assert_eq!(verdicts, expected);
}

#[test]
fn quarantine_policy_files_raw_lines_in_order_and_keeps_scoring() {
    let (model, lines) = train("quarantine", 62);
    let qpath = temp_dir().join("quarantine.ndcsv");
    let _ = std::fs::remove_file(&qpath);
    let input = format!(
        "{}\nnot,numbers,at,all,x,y\n{}\ngarbage\n{}\n",
        lines[0], lines[1], lines[2]
    );
    let quarantine_flag = format!("quarantine:{}", qpath.display());
    let (code, out) = stream::run_with_input(
        &stream_args(&model, &["--on-error", &quarantine_flag]),
        input.as_bytes(),
    );
    assert_eq!(code, exit::OK, "{out}");

    let out_lines: Vec<&str> = out.lines().collect();
    assert_eq!(out_lines.len(), 5);
    assert!(out_lines[0].contains("\"record\":0"));
    assert!(out_lines[1].contains("\"line\":2"), "{}", out_lines[1]);
    assert!(out_lines[1].contains("\"action\":\"quarantine\""));
    assert!(out_lines[2].contains("\"record\":1"));
    assert!(out_lines[3].contains("\"line\":4"), "{}", out_lines[3]);
    assert!(out_lines[4].contains("\"record\":2"));

    // The raw lines landed in the quarantine file, in arrival order.
    let filed = std::fs::read_to_string(&qpath).unwrap();
    assert_eq!(filed, "not,numbers,at,all,x,y\ngarbage\n");

    // A restart appends rather than truncating the evidence.
    let (code, _) = stream::run_with_input(
        &stream_args(&model, &["--on-error", &quarantine_flag]),
        "garbage again\n".as_bytes(),
    );
    assert_eq!(code, exit::OK);
    let filed = std::fs::read_to_string(&qpath).unwrap();
    assert_eq!(filed, "not,numbers,at,all,x,y\ngarbage\ngarbage again\n");
}

/// Scripted read faults: a transient I/O error, garbage (non-UTF-8) bytes,
/// and a mid-line truncation. Under `skip` the stream survives all three
/// with in-band error verdicts; under the default `abort` the first one is
/// fatal.
#[test]
fn read_faults_survive_skip_and_kill_abort() {
    let (model, lines) = train("read-faults", 63);
    let script = |lines: &[String]| {
        vec![
            Ok(format!("{}\n", lines[0]).into_bytes()),
            Err(io::ErrorKind::TimedOut),
            Ok(format!("{}\n", lines[1]).into_bytes()),
            Ok(b"\xff\xfe garbage bytes\n".to_vec()),
            // Mid-line truncation: the record is cut by an error, and its
            // tail arrives as a new (malformed) line.
            Ok(b"0.25,0.5".to_vec()),
            Err(io::ErrorKind::ConnectionReset),
            Ok(b",0.75,1.0,1.25,1.5\n".to_vec()),
            Ok(format!("{}\n", lines[2]).into_bytes()),
        ]
    };

    let (code, out) = stream::run_with_input(
        &stream_args(&model, &["--on-error", "skip"]),
        FaultyReader::new(script(&lines)),
    );
    assert_eq!(code, exit::OK, "{out}");
    let (errors, verdicts): (Vec<&str>, Vec<&str>) =
        out.lines().partition(|l| l.contains("\"error\":"));
    // Timeout, UTF-8 garbage, truncation error, and the orphaned tail.
    assert_eq!(errors.len(), 4, "{out}");
    assert!(errors[0].contains("stdin read failed"), "{}", errors[0]);
    assert_eq!(verdicts.len(), 3, "{out}");
    assert!(verdicts[2].contains("\"record\":2"), "{}", verdicts[2]);

    let (code, out) =
        stream::run_with_input(&stream_args(&model, &[]), FaultyReader::new(script(&lines)));
    assert_eq!(code, exit::RUNTIME);
    assert!(out.contains("stdin read failed"), "{out}");
}

#[test]
fn circuit_breaker_trips_on_scripted_garbage_despite_skip_policy() {
    let (model, lines) = train("breaker", 64);
    let mut input = format!("{}\n", lines[0]);
    input.push_str(&"garbage\n".repeat(6));
    let (code, out) = stream::run_with_input(
        &stream_args(
            &model,
            &["--on-error", "skip", "--max-consecutive-errors", "5"],
        ),
        input.as_bytes(),
    );
    assert_eq!(code, exit::RUNTIME);
    assert!(out.contains("--max-consecutive-errors 5"), "{out}");
    // Exactly 5 error verdicts escaped before the breaker opened.
    assert_eq!(
        out.lines().filter(|l| l.contains("\"error\":")).count(),
        5,
        "{out}"
    );
}

/// A hard write failure is a runtime error; a consumer hang-up (BrokenPipe)
/// is a normal shutdown that still lands the final checkpoint.
#[test]
fn write_faults_hard_failure_vs_consumer_hangup() {
    let (model, lines) = train("write-faults", 65);
    let input = lines[..10].join("\n") + "\n";

    let mut hard = FaultyWriter::new(3, io::ErrorKind::Other);
    let (code, err) = stream::run_streaming(&stream_args(&model, &[]), input.as_bytes(), &mut hard);
    assert_eq!(code, exit::RUNTIME);
    assert!(err.contains("stdout write failed"), "{err}");
    assert_eq!(hard.text().lines().count(), 3);

    let ckpt = temp_dir().join("hangup.ckpt.json");
    let _ = std::fs::remove_file(&ckpt);
    let mut pipe = FaultyWriter::new(3, io::ErrorKind::BrokenPipe);
    let (code, err) = stream::run_streaming(
        &stream_args(&model, &["--checkpoint", ckpt.to_str().unwrap()]),
        input.as_bytes(),
        &mut pipe,
    );
    assert_eq!(code, exit::OK, "{err}");
    assert_eq!(pipe.text().lines().count(), 3);
    // Record 3 was scored before its verdict hit the closed pipe, so the
    // hang-up checkpoint records 4 scored records.
    let cp = Checkpoint::load(&ckpt).unwrap();
    assert_eq!(cp.records_scored, 4);
}

/// The kill/resume acceptance scenario: stream half the records with a
/// checkpoint, "kill" the process, resume from the checkpoint on the second
/// half, and the concatenated output — drift reports included — must be
/// byte-identical to one uninterrupted run.
#[test]
fn kill_and_resume_reproduces_uninterrupted_output_byte_for_byte() {
    let (model, lines) = train("resume", 66);
    let ckpt = temp_dir().join("resume.ckpt.json");
    let _ = std::fs::remove_file(&ckpt);

    let all = lines.join("\n") + "\n";
    let (code, full) = stream::run_with_input(
        &stream_args(&model, &["--drift-every", "100"]),
        all.as_bytes(),
    );
    assert_eq!(code, exit::OK, "{full}");
    assert!(full.contains("\"drift\":"), "{full}");

    let first_half = lines[..200].join("\n") + "\n";
    let (code, first) = stream::run_with_input(
        &stream_args(
            &model,
            &[
                "--drift-every",
                "100",
                "--checkpoint",
                ckpt.to_str().unwrap(),
                "--checkpoint-every",
                "150",
            ],
        ),
        first_half.as_bytes(),
    );
    assert_eq!(code, exit::OK, "{first}");

    // Resume deliberately omits --drift-every: the cadence must travel in
    // the checkpoint.
    let second_half = lines[200..].join("\n") + "\n";
    let (code, second) = stream::run_with_input(
        &stream_args(&model, &["--resume", ckpt.to_str().unwrap()]),
        second_half.as_bytes(),
    );
    assert_eq!(code, exit::OK, "{second}");

    assert_eq!(first.clone() + &second, full);
}

#[test]
fn resume_rejects_a_checkpoint_from_a_different_model() {
    let (model_a, lines) = train("fingerprint-a", 67);
    let (model_b, _) = train("fingerprint-b", 68);
    let ckpt = temp_dir().join("mismatch.ckpt.json");
    let _ = std::fs::remove_file(&ckpt);

    let input = lines[..50].join("\n") + "\n";
    let (code, out) = stream::run_with_input(
        &stream_args(&model_a, &["--checkpoint", ckpt.to_str().unwrap()]),
        input.as_bytes(),
    );
    assert_eq!(code, exit::OK, "{out}");

    let (code, out) = stream::run_with_input(
        &stream_args(&model_b, &["--resume", ckpt.to_str().unwrap()]),
        input.as_bytes(),
    );
    assert_eq!(code, exit::RUNTIME);
    assert!(out.contains("fingerprint"), "{out}");

    // A corrupted checkpoint is rejected just as loudly.
    let good = std::fs::read_to_string(&ckpt).unwrap();
    std::fs::write(&ckpt, &good[..good.len() / 2]).unwrap();
    let (code, out) = stream::run_with_input(
        &stream_args(&model_a, &["--resume", ckpt.to_str().unwrap()]),
        input.as_bytes(),
    );
    assert_eq!(code, exit::RUNTIME);
    assert!(out.contains("cannot resume"), "{out}");
}

/// A stale staging file left by a killed process must not poison later
/// checkpointing: the next run overwrites it and lands a clean checkpoint.
#[test]
fn stale_staging_file_from_a_killed_run_is_harmless() {
    let (model, lines) = train("stale-tmp", 69);
    let ckpt = temp_dir().join("stale.ckpt.json");
    let _ = std::fs::remove_file(&ckpt);
    std::fs::write(staging_path(&ckpt), "{\"torn\": tru").unwrap();

    let input = lines[..30].join("\n") + "\n";
    let (code, out) = stream::run_with_input(
        &stream_args(&model, &["--checkpoint", ckpt.to_str().unwrap()]),
        input.as_bytes(),
    );
    assert_eq!(code, exit::OK, "{out}");
    assert!(!staging_path(&ckpt).exists());
    assert_eq!(Checkpoint::load(&ckpt).unwrap().records_scored, 30);
}
