//! End-to-end tests of the live telemetry surface against the compiled
//! binary: scrape a running `stream --serve-metrics` over real TCP, and
//! validate `--trace-out` output with the in-tree JSON parser.

use hdoutlier_cli::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::Duration;

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hdoutlier"))
}

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("hdoutlier-live-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A planted CSV plus a model fitted on it by the real binary.
fn fitted_model(name: &str) -> (std::path::PathBuf, std::path::PathBuf) {
    use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 300,
        n_dims: 6,
        n_outliers: 3,
        strong_groups: Some(2),
        seed: 47,
        ..PlantedConfig::default()
    });
    let csv = temp_dir().join(format!("{name}.csv"));
    hdoutlier_data::csv::write_path(&planted.dataset, &csv).expect("writable");
    let model = temp_dir().join(format!("{name}.model.json"));
    let out = binary()
        .args([
            "detect",
            "--phi=4",
            "--k=2",
            "--m=5",
            "--search=brute",
            "--save-model",
            model.to_str().unwrap(),
            "--quiet",
            csv.to_str().unwrap(),
        ])
        .output()
        .expect("spawn detect");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (csv, model)
}

/// One bounded HTTP GET against the scraped endpoint.
fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: live\r\n\r\n").as_bytes())
        .expect("request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("response");
    out
}

#[test]
fn stream_serve_metrics_is_scrapable_while_running() {
    let (csv, model) = fitted_model("live-stream");
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    let n_records = csv_text.lines().count() - 1;

    let mut child = binary()
        .args([
            "stream",
            "--model",
            model.to_str().unwrap(),
            "--serve-metrics",
            "127.0.0.1:0",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn stream");

    // The server's bound address is echoed on stderr before any verdict.
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr"));
    let mut banner = String::new();
    stderr.read_line(&mut banner).expect("banner line");
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split("/metrics").next())
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
        .to_string();

    // Feed every record and wait for all verdicts, so the scrape observes a
    // known record count while the process is still alive.
    let mut stdin = child.stdin.take().expect("stdin");
    stdin.write_all(csv_text.as_bytes()).expect("feed records");
    stdin.flush().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));
    let mut verdicts = 0usize;
    let mut line = String::new();
    while verdicts < n_records {
        line.clear();
        let n = stdout.read_line(&mut line).expect("verdict line");
        assert_ne!(n, 0, "stream exited after {verdicts} verdicts");
        verdicts += 1;
    }

    let health = http_get(&addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");

    let metrics = http_get(&addr, "/metrics");
    assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
    // The acceptance counter, with at least this run's records in it.
    let records_line = metrics
        .lines()
        .find(|l| l.starts_with("hdoutlier_stream_records_total "))
        .unwrap_or_else(|| panic!("no records counter in:\n{metrics}"));
    let total: u64 = records_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(total >= n_records as u64, "{records_line}");
    // Serving implies timing: the latency histogram has populated buckets.
    assert!(
        metrics.contains("hdoutlier_stream_record_latency_us_bucket{le=\""),
        "{metrics}"
    );
    let latency_count = metrics
        .lines()
        .find(|l| l.starts_with("hdoutlier_stream_record_latency_us_count "))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<u64>().ok())
        .expect("latency count sample");
    assert!(latency_count >= n_records as u64, "{metrics}");
    // Process metrics ride along on every scrape.
    assert!(
        metrics.contains("hdoutlier_process_uptime_seconds"),
        "{metrics}"
    );
    assert!(
        metrics.contains("hdoutlier_process_start_ts_us_total"),
        "{metrics}"
    );

    let snapshot = http_get(&addr, "/snapshot");
    let body = snapshot.split("\r\n\r\n").nth(1).expect("snapshot body");
    let hist_line = body
        .lines()
        .find(|l| l.contains("\"metric\":\"hdoutlier.stream.record_latency_us\""))
        .unwrap_or_else(|| panic!("no latency histogram in:\n{body}"));
    let j = Json::parse(hist_line).expect("snapshot line parses");
    assert!(j.get("buckets").is_some(), "{hist_line}");

    // EOF on stdin ends the stream; the server joins and the exit is clean.
    drop(stdin);
    let status = child.wait().expect("wait");
    assert!(status.success(), "{status:?}");
}

#[test]
fn trace_out_from_the_binary_is_valid_chrome_trace() {
    let (csv, _model) = fitted_model("live-trace");
    let trace = temp_dir().join("live-trace.trace.json");
    let out = binary()
        .args([
            "detect",
            "--phi=4",
            "--k=2",
            "--m=5",
            "--search=brute",
            "--quiet",
            "--trace-out",
            trace.to_str().unwrap(),
            csv.to_str().unwrap(),
        ])
        .output()
        .expect("spawn detect");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).unwrap();
    let j = Json::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    let events = j
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    // The detector's phases appear as begin/end pairs with the Chrome
    // trace-event fields Perfetto requires.
    assert!(!events.is_empty(), "{text}");
    assert_eq!(events.len() % 2, 0, "unpaired events: {text}");
    for e in events {
        for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(e.get(key).is_some(), "missing {key} in {text}");
        }
    }
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(names.contains(&"search"), "{names:?}");
    assert!(names.contains(&"discretize"), "{names:?}");
    let phases: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("ph").and_then(Json::as_str))
        .collect();
    assert_eq!(
        phases.iter().filter(|&&p| p == "B").count(),
        phases.iter().filter(|&&p| p == "E").count(),
        "{phases:?}"
    );
}
