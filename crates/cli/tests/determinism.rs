//! Cross-thread-count equivalence suite: the pooled search, drill-down,
//! and baseline paths must produce **byte-identical** `--json` reports at
//! any `--threads` setting. This is the contract that makes `--threads`
//! safe to default to the machine's core count — parallelism is a pure
//! speedup, never a result change.
//!
//! The one exception is `detect`'s `stats.elapsed_ms`, which is wall-clock
//! time and differs even between two serial runs; it is normalized to `0`
//! before comparison.

use hdoutlier_cli::{exit, run};

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

/// A seeded 6-dimensional dataset: a xorshift-uniform bulk plus planted
/// contrarians in otherwise-empty grid cells. Deterministic by construction,
/// so every invocation in this suite sees the same bytes.
fn seeded_csv(dir_tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hdoutlier-determinism-{}-{dir_tag}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("seeded.csv");
    let mut text = String::from("a,b,c,d,e,f\n");
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..240 {
        let row: Vec<String> = (0..6).map(|_| format!("{:.6}", next())).collect();
        text.push_str(&row.join(","));
        text.push('\n');
    }
    text.push_str("30.0,30.0,0.5,0.5,0.5,0.5\n");
    text.push_str("-30.0,0.5,-30.0,0.5,0.5,0.5\n");
    text.push_str("0.5,-30.0,0.5,30.0,0.5,0.5\n");
    std::fs::write(&path, text).unwrap();
    path
}

/// Runs the CLI, asserting success, and returns the full output.
fn run_ok(parts: &[&str]) -> String {
    let (code, out) = run(&argv(parts));
    assert_eq!(code, exit::OK, "{}: {out}", parts.join(" "));
    out
}

/// Replaces the wall-clock `"elapsed_ms"` value with `0` so reports can be
/// compared byte-for-byte. Every other field is deterministic.
fn normalize_elapsed(report: &str) -> String {
    let needle = "\"elapsed_ms\": ";
    let Some(at) = report.find(needle) else {
        panic!("report has no elapsed_ms field:\n{report}");
    };
    let start = at + needle.len();
    let end = start
        + report[start..]
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
            .expect("the number is followed by a delimiter");
    assert!(end > start, "elapsed_ms value is not numeric:\n{report}");
    format!("{}0{}", &report[..start], &report[end..])
}

#[test]
fn detect_brute_force_is_identical_at_any_thread_count() {
    let csv = seeded_csv("detect-brute");
    let base = [
        "detect",
        "--phi=4",
        "--k=3",
        "--m=8",
        "--search=brute",
        "--json",
    ];
    let reference = {
        let mut parts = base.to_vec();
        parts.extend(["--threads", "1", csv.to_str().unwrap()]);
        normalize_elapsed(&run_ok(&parts))
    };
    for threads in ["2", "8"] {
        let mut parts = base.to_vec();
        parts.extend(["--threads", threads, csv.to_str().unwrap()]);
        let report = normalize_elapsed(&run_ok(&parts));
        assert_eq!(report, reference, "--threads {threads} diverged");
    }
}

#[test]
fn detect_seeded_evolutionary_is_identical_at_any_thread_count() {
    let csv = seeded_csv("detect-evolve");
    let base = [
        "detect",
        "--phi=4",
        "--k=3",
        "--m=6",
        "--search=evolutionary",
        "--seed=7",
        "--generations=60",
        "--population=40",
        "--json",
    ];
    let reference = {
        let mut parts = base.to_vec();
        parts.extend(["--threads", "1", csv.to_str().unwrap()]);
        normalize_elapsed(&run_ok(&parts))
    };
    for threads in ["2", "8"] {
        let mut parts = base.to_vec();
        parts.extend(["--threads", threads, csv.to_str().unwrap()]);
        let report = normalize_elapsed(&run_ok(&parts));
        assert_eq!(report, reference, "--threads {threads} diverged");
    }
}

#[test]
fn explain_is_identical_at_any_thread_count() {
    let csv = seeded_csv("explain");
    let base = ["explain", "--row=240", "--phi=4", "--k=1,2,3", "--json"];
    let reference = {
        let mut parts = base.to_vec();
        parts.extend(["--threads", "1", csv.to_str().unwrap()]);
        run_ok(&parts)
    };
    assert!(reference.contains("\"views_total\""));
    for threads in ["2", "8"] {
        let mut parts = base.to_vec();
        parts.extend(["--threads", threads, csv.to_str().unwrap()]);
        let report = run_ok(&parts);
        assert_eq!(report, reference, "--threads {threads} diverged");
    }
}

#[test]
fn baselines_are_identical_at_any_thread_count() {
    let csv = seeded_csv("baseline");
    for method in [&["--method=knn", "--k=3"][..], &["--method=lof", "--k=10"]] {
        let mut base = vec!["baseline"];
        base.extend_from_slice(method);
        base.extend(["--top=12", "--json"]);
        let reference = {
            let mut parts = base.clone();
            parts.extend(["--threads", "1", csv.to_str().unwrap()]);
            run_ok(&parts)
        };
        assert!(reference.contains("\"outliers\""));
        for threads in ["2", "8"] {
            let mut parts = base.clone();
            parts.extend(["--threads", threads, csv.to_str().unwrap()]);
            let report = run_ok(&parts);
            assert_eq!(report, reference, "{method:?} --threads {threads} diverged");
        }
    }
}
