//! End-to-end smoke test exercising the observability flags the way ci.sh
//! documents them: run `detect` with `--log-json --metrics-out` on a tiny
//! dataset and validate every produced artifact with the in-tree parser.

use hdoutlier_cli::json::Json;
use hdoutlier_cli::{exit, run};

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

/// A tiny dataset: a tight uniform cluster plus two planted outliers that
/// land in otherwise-empty grid cells.
fn tiny_csv(path: &std::path::Path) {
    let mut text = String::from("a,b,c\n");
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..120 {
        let (a, b, c) = (next(), next(), next());
        text.push_str(&format!("{a:.6},{b:.6},{c:.6}\n"));
    }
    text.push_str("25.0,25.0,0.5\n");
    text.push_str("-25.0,-25.0,0.5\n");
    std::fs::write(path, text).unwrap();
}

#[test]
fn detect_with_log_json_and_metrics_out_produces_valid_artifacts() {
    let dir = std::env::temp_dir().join(format!("hdoutlier-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("tiny.csv");
    let metrics = dir.join("metrics.ndjson");
    tiny_csv(&csv);

    let (code, out) = run(&argv(&[
        "detect",
        "--phi=4",
        "--k=2",
        "--m=4",
        "--search=brute",
        "--json",
        "--log-json",
        "--log-level",
        "info",
        "--metrics-out",
        metrics.to_str().unwrap(),
        csv.to_str().unwrap(),
    ]));
    assert_eq!(code, exit::OK, "{out}");

    // The report itself parses and embeds a metrics object.
    let report = Json::parse(&out).unwrap_or_else(|e| panic!("{e}\n{out}"));
    assert!(report.get("projections").is_some());
    assert!(report.get("outlier_rows").is_some());
    let embedded = report
        .get("metrics")
        .expect("metrics embedded with --metrics-out");
    assert!(embedded.get("hdoutlier.core.search_us").is_some(), "{out}");

    // The snapshot file is NDJSON: one valid object per line, each carrying
    // a metric name and type, including the core pipeline phases.
    let snapshot = std::fs::read_to_string(&metrics).unwrap();
    assert!(!snapshot.trim().is_empty());
    let mut names = Vec::new();
    for line in snapshot.lines() {
        let j = Json::parse(line).unwrap_or_else(|e| panic!("{e}\n{line}"));
        let name = j.get("metric").and_then(Json::as_str).expect("metric name");
        assert!(j.get("type").is_some(), "{line}");
        names.push(name.to_string());
    }
    for expected in [
        "hdoutlier.core.discretize_us",
        "hdoutlier.core.index_us",
        "hdoutlier.core.search_us",
        "hdoutlier.core.postprocess_us",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "{expected} missing from {names:?}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
