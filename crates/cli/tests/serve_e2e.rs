//! End-to-end tests of `hdoutlier serve` against the compiled binary over
//! real TCP: concurrent sessions whose verdict streams must be
//! byte-identical to `hdoutlier stream`, a kill -9 / restart / resume
//! round trip whose continuation must match an uninterrupted run, and
//! graceful drain on SIGTERM and on `POST /shutdown`.

use hdoutlier_cli::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hdoutlier"))
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("hdoutlier-serve-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Plants a dataset, fits a model with the real binary, and renders every
/// row once: the same field strings feed both the CSV reference run and
/// the NDJSON served requests, so the two paths parse identical floats.
struct Fixture {
    model: std::path::PathBuf,
    rows: Vec<Vec<String>>,
}

fn fixture(dir: &std::path::Path, seed: u64) -> Fixture {
    use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 300,
        n_dims: 5,
        n_outliers: 3,
        strong_groups: Some(2),
        seed,
        ..PlantedConfig::default()
    });
    let csv = dir.join("train.csv");
    hdoutlier_data::csv::write_path(&planted.dataset, &csv).expect("writable");
    let model = dir.join("model.json");
    let out = binary()
        .args([
            "detect",
            "--phi=4",
            "--k=2",
            "--m=5",
            "--search=brute",
            "--save-model",
            model.to_str().unwrap(),
            "--quiet",
            csv.to_str().unwrap(),
        ])
        .output()
        .expect("spawn detect");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let rows = (0..planted.dataset.n_rows())
        .map(|i| {
            planted
                .dataset
                .row(i)
                .iter()
                .map(|&v| Json::from(v).render())
                .collect()
        })
        .collect();
    Fixture { model, rows }
}

impl Fixture {
    fn csv_lines(&self, range: std::ops::Range<usize>) -> String {
        self.rows[range]
            .iter()
            .map(|r| format!("{}\n", r.join(",")))
            .collect()
    }

    fn ndjson_lines(&self, range: std::ops::Range<usize>) -> String {
        self.rows[range]
            .iter()
            .map(|r| format!("[{}]\n", r.join(",")))
            .collect()
    }

    /// The reference: `hdoutlier stream` over CSV rows `range`, stdout
    /// captured. Serve responses must reproduce these bytes exactly.
    fn stream_reference(&self, range: std::ops::Range<usize>) -> String {
        let mut child = binary()
            .args([
                "stream",
                "--model",
                self.model.to_str().unwrap(),
                "--no-header",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn stream");
        child
            .stdin
            .take()
            .expect("stdin")
            .write_all(self.csv_lines(range).as_bytes())
            .expect("feed stream");
        let out = child.wait_with_output().expect("stream run");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf8 verdicts")
    }
}

/// A running `hdoutlier serve` child plus the address from its banner.
struct ServeProc {
    child: Child,
    addr: String,
    stderr_rest: Option<std::thread::JoinHandle<String>>,
}

fn spawn_serve(extra_args: &[&str]) -> ServeProc {
    let mut args = vec!["serve", "--addr", "127.0.0.1:0"];
    args.extend_from_slice(extra_args);
    let mut child = binary()
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    // The banner is written before any request is served; under
    // `--log-level info` event lines (e.g. `listening`) may precede it,
    // so scan until the line carrying the address.
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr"));
    let addr = loop {
        let mut line = String::new();
        let n = stderr.read_line(&mut line).expect("banner line");
        assert!(n > 0, "stderr closed before the serve banner");
        if let Some(addr) = line
            .split("serve: listening on http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
        {
            break addr.to_string();
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe; the
    // collected text (event log under --log-json) is joinable after exit.
    let stderr_rest = std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = stderr.read_to_string(&mut rest);
        rest
    });
    ServeProc {
        child,
        addr,
        stderr_rest: Some(stderr_rest),
    }
}

impl ServeProc {
    fn wait_for_exit(&mut self) -> std::process::ExitStatus {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            assert!(Instant::now() < deadline, "serve did not exit in time");
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Everything the child wrote to stderr after the banner. Call after
    /// [`ServeProc::wait_for_exit`] — joins the drain thread.
    fn stderr_text(&mut self) -> String {
        self.stderr_rest
            .take()
            .expect("stderr already taken")
            .join()
            .expect("stderr drain thread")
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One close-delimited HTTP request; returns `(status, body)`.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = http_with_id(addr, method, path, None, body);
    (status, body)
}

/// Like [`http`], optionally sending an `X-Request-Id` header; also
/// returns the `X-Request-Id` the response echoed.
fn http_with_id(
    addr: &str,
    method: &str,
    path: &str,
    request_id: Option<&str>,
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to serve");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let id_header = request_id.map_or(String::new(), |id| format!("X-Request-Id: {id}\r\n"));
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\
                 {id_header}Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("framed response");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let echoed = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("x-request-id")
                .then(|| value.trim().to_string())
        })
        .unwrap_or_else(|| panic!("no X-Request-Id header in {head:?}"));
    (status, echoed, payload.to_string())
}

fn create_session(addr: &str, model: &std::path::Path, extra: &str) -> (u16, String) {
    let body = format!(
        "{{{extra}\"model_path\": {}}}",
        Json::from(model.to_str().unwrap()).render()
    );
    http(addr, "POST", "/sessions", &body)
}

#[test]
fn concurrent_sessions_match_stream_byte_for_byte() {
    let dir = temp_dir("concurrent");
    let fx = fixture(&dir, 47);
    let serve = spawn_serve(&[]);

    // Two sessions with different configs on one server: `a` scores one
    // record at a time, `b` uses pooled batches of 7.
    let (status, body) = create_session(&serve.addr, &fx.model, "\"id\": \"a\", ");
    assert_eq!(status, 201, "{body}");
    let (status, body) = create_session(&serve.addr, &fx.model, "\"id\": \"b\", \"batch\": 7, ");
    assert_eq!(status, 201, "{body}");

    // Interleaved requests: a and b advance through the same records in
    // different chunk sizes, each oblivious to the other.
    let mut out_a = String::new();
    let mut out_b = String::new();
    let mut fed_b = 0;
    for start in (0..120).step_by(40) {
        let (status, chunk) = http(
            &serve.addr,
            "POST",
            "/sessions/a/score",
            &fx.ndjson_lines(start..start + 40),
        );
        assert_eq!(status, 200, "{chunk}");
        out_a.push_str(&chunk);
        if fed_b < 120 {
            let (status, chunk) = http(
                &serve.addr,
                "POST",
                "/sessions/b/score",
                &fx.ndjson_lines(fed_b..fed_b + 60),
            );
            assert_eq!(status, 200, "{chunk}");
            out_b.push_str(&chunk);
            fed_b += 60;
        }
    }
    let reference = fx.stream_reference(0..120);
    assert_eq!(out_a, reference, "session a diverged from stream");
    assert_eq!(out_b, reference, "session b diverged from stream");

    // The status documents see two isolated sessions at the same offset.
    for id in ["a", "b"] {
        let (status, body) = http(&serve.addr, "GET", &format!("/sessions/{id}"), "");
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("records_scored").unwrap().as_number(), Some(120.0));
    }
}

#[test]
fn kill_nine_restart_resume_continues_the_exact_stream() {
    let dir = temp_dir("kill9");
    let fx = fixture(&dir, 53);
    let ckpt_dir = dir.join("ckpts");
    let ckpt_flag = ckpt_dir.to_str().unwrap().to_string();

    // First lifetime: checkpoint every 50 records, requests of exactly 50,
    // so every request boundary is also a checkpoint boundary.
    let mut serve = spawn_serve(&["--checkpoint-dir", &ckpt_flag]);
    let (status, body) = create_session(
        &serve.addr,
        &fx.model,
        "\"id\": \"k\", \"checkpoint_every\": 50, ",
    );
    assert_eq!(status, 201, "{body}");
    let mut first_half = String::new();
    for start in (0..200).step_by(50) {
        let (status, chunk) = http(
            &serve.addr,
            "POST",
            "/sessions/k/score",
            &fx.ndjson_lines(start..start + 50),
        );
        assert_eq!(status, 200, "{chunk}");
        first_half.push_str(&chunk);
    }

    // kill -9: no drain, no final checkpoint, no goodbye.
    serve.child.kill().expect("kill -9");
    serve.child.wait().expect("reap");

    // The durable state is the last cadence checkpoint.
    let ckpt_path = ckpt_dir.join("k.ckpt.json");
    let ckpt = std::fs::read_to_string(&ckpt_path).expect("checkpoint survived the kill");
    let recorded = Json::parse(&ckpt)
        .unwrap()
        .get("scorer")
        .unwrap()
        .get("records_scored")
        .unwrap()
        .as_number()
        .unwrap() as usize;
    assert!(recorded > 0 && recorded <= 200, "recorded={recorded}");
    assert_eq!(recorded, 200, "requests align with the checkpoint cadence");

    // Second lifetime: resume from the checkpoint and finish the stream.
    let serve = spawn_serve(&["--checkpoint-dir", &ckpt_flag]);
    let (status, body) = create_session(
        &serve.addr,
        &fx.model,
        "\"id\": \"k\", \"resume\": true, \"checkpoint_every\": 50, ",
    );
    assert_eq!(status, 201, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("records_scored").unwrap().as_number(), Some(200.0));
    let (status, second_half) = http(
        &serve.addr,
        "POST",
        "/sessions/k/score",
        &fx.ndjson_lines(200..300),
    );
    assert_eq!(status, 200, "{second_half}");

    // Continuation equivalence: interrupted + resumed == uninterrupted.
    let reference = fx.stream_reference(0..300);
    assert_eq!(format!("{first_half}{second_half}"), reference);
}

#[test]
fn sigterm_drains_gracefully_with_final_checkpoints() {
    let dir = temp_dir("sigterm");
    let fx = fixture(&dir, 59);
    let ckpt_dir = dir.join("ckpts");
    let ckpt_flag = ckpt_dir.to_str().unwrap().to_string();

    let mut serve = spawn_serve(&["--checkpoint-dir", &ckpt_flag]);
    let (status, body) = create_session(&serve.addr, &fx.model, "\"id\": \"g\", ");
    assert_eq!(status, 201, "{body}");
    let (status, _) = http(
        &serve.addr,
        "POST",
        "/sessions/g/score",
        &fx.ndjson_lines(0..30),
    );
    assert_eq!(status, 200);

    // SIGTERM (what an orchestrator sends): exit 0 after a full drain.
    let term = Command::new("kill")
        .args(["-TERM", &serve.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let exit = serve.wait_for_exit();
    assert_eq!(exit.code(), Some(0), "drain must exit cleanly");

    // The drain wrote a final checkpoint at the full offset (30 is not on
    // any cadence boundary, so only the drain could have written it).
    let ckpt = std::fs::read_to_string(ckpt_dir.join("g.ckpt.json")).expect("final checkpoint");
    let recorded = Json::parse(&ckpt)
        .unwrap()
        .get("scorer")
        .unwrap()
        .get("records_scored")
        .unwrap()
        .as_number();
    assert_eq!(recorded, Some(30.0));

    // And the listener is gone.
    assert!(TcpStream::connect(&serve.addr).is_err());
}

/// The ci.sh observability smoke: serve boots with `--trace-out` and SLO
/// flags, one session scores one request carrying a client `X-Request-Id`,
/// and the identity threads everywhere it should — echoed on the response,
/// in the NDJSON access-log event, and in the Chrome trace span args —
/// while the verdict body stays byte-identical to `hdoutlier stream`.
/// After drain, `/status` reported healthy and the trace file parses as
/// Chrome trace JSON with per-request spans.
#[test]
fn request_id_threads_through_response_access_log_and_trace() {
    let dir = temp_dir("request-id");
    let fx = fixture(&dir, 67);
    let trace_path = dir.join("trace.json");
    let mut serve = spawn_serve(&[
        "--log-json",
        "--log-level",
        "info",
        "--trace-out",
        trace_path.to_str().unwrap(),
        "--slo-error-rate",
        "0.5",
        "--slo-p99-ms",
        "5000",
    ]);

    let (status, body) = create_session(&serve.addr, &fx.model, "\"id\": \"t\", ");
    assert_eq!(status, 201, "{body}");

    // A client-supplied id is echoed verbatim, and the verdict stream is
    // still byte-for-byte what `stream` writes for these records.
    let (status, echoed, verdicts) = http_with_id(
        &serve.addr,
        "POST",
        "/sessions/t/score",
        Some("e2e-req-42"),
        &fx.ndjson_lines(0..40),
    );
    assert_eq!(status, 200, "{verdicts}");
    assert_eq!(echoed, "e2e-req-42");
    assert_eq!(verdicts, fx.stream_reference(0..40));

    // The SLO engine judges the traffic so far (all 2xx, fast) healthy.
    let (status, status_body) = http(&serve.addr, "GET", "/status", "");
    assert_eq!(status, 200);
    let doc = Json::parse(&status_body).expect("status json");
    assert_eq!(doc.get("status").unwrap().as_str(), Some("healthy"));
    let keys: Vec<&str> = doc
        .get("keys")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|k| k.get("key").unwrap().as_str().unwrap())
        .collect();
    assert!(
        keys.contains(&"route:/sessions/{id}/score") && keys.contains(&"session:t"),
        "{keys:?}"
    );
    let (status, health) = http(&serve.addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{health}");

    let (status, _) = http(&serve.addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    let exit = serve.wait_for_exit();
    assert_eq!(exit.code(), Some(0));

    // The access log (NDJSON events on stderr) has the wide per-request
    // event for the scoring request, tagged with the client's id.
    let stderr = serve.stderr_text();
    let access = stderr
        .lines()
        .find(|l| l.contains("\"event\":\"access\"") && l.contains("\"e2e-req-42\""))
        .unwrap_or_else(|| panic!("no access event for e2e-req-42 in:\n{stderr}"));
    for needle in [
        "\"route\":\"/sessions/{id}/score\"",
        "\"status\":200",
        "\"records\":40",
        "\"request_id\":\"e2e-req-42\"",
        "\"session_id\":\"t\"",
    ] {
        assert!(access.contains(needle), "{needle} missing in {access}");
    }

    // The trace file is valid Chrome JSON whose request spans carry the
    // same identity in their args.
    let trace = std::fs::read_to_string(&trace_path).expect("trace file");
    let trace_json = Json::parse(&trace).expect("valid chrome trace json");
    let events = trace_json
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    let tagged = events.iter().any(|e| {
        e.get("name").and_then(Json::as_str) == Some("request")
            && e.get("args")
                .and_then(|a| a.get("request_id"))
                .and_then(Json::as_str)
                == Some("e2e-req-42")
    });
    assert!(tagged, "no request span with args.request_id in {trace}");
}

/// Requests without a client id get server-generated ones — unique across
/// concurrent connections to different sessions.
#[test]
fn generated_request_ids_are_unique_across_concurrent_sessions() {
    let dir = temp_dir("generated-ids");
    let fx = fixture(&dir, 71);
    let serve = spawn_serve(&[]);
    for id in ["u1", "u2", "u3"] {
        let (status, body) = create_session(&serve.addr, &fx.model, &format!("\"id\": \"{id}\", "));
        assert_eq!(status, 201, "{body}");
    }

    let handles: Vec<_> = ["u1", "u2", "u3"]
        .into_iter()
        .map(|id| {
            let addr = serve.addr.clone();
            let lines = fx.ndjson_lines(0..10);
            std::thread::spawn(move || {
                (0..4)
                    .map(|_| {
                        let (status, echoed, body) = http_with_id(
                            &addr,
                            "POST",
                            &format!("/sessions/{id}/score"),
                            None,
                            &lines,
                        );
                        assert_eq!(status, 200, "{body}");
                        echoed
                    })
                    .collect::<Vec<String>>()
            })
        })
        .collect();
    let ids: Vec<String> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("scoring thread"))
        .collect();
    assert_eq!(ids.len(), 12);
    for id in &ids {
        assert_eq!(id.len(), 32, "generated id {id:?} is not 32 hex chars");
        assert!(id.bytes().all(|b| b.is_ascii_hexdigit()), "{id:?}");
    }
    let unique: std::collections::BTreeSet<&String> = ids.iter().collect();
    assert_eq!(unique.len(), ids.len(), "duplicate generated ids: {ids:?}");
}

#[test]
fn post_shutdown_drains_like_sigterm() {
    let dir = temp_dir("shutdown");
    let fx = fixture(&dir, 61);
    let mut serve = spawn_serve(&[]);
    let (status, body) = create_session(&serve.addr, &fx.model, "");
    assert_eq!(status, 201, "{body}");

    let (status, body) = http(&serve.addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("draining"), "{body}");
    let exit = serve.wait_for_exit();
    assert_eq!(exit.code(), Some(0));
}
