//! End-to-end test of `--profile-out`: the compiled binary, a real
//! detection run, and the folded stacks the sampling profiler writes.
//!
//! The dataset is sized so the brute-force search spans many sampler
//! ticks at a high rate — small datasets finish between two ticks and
//! produce an empty (but still valid) profile, which is exactly the
//! flake this test must not have.

use std::process::Command;

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hdoutlier"))
}

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("hdoutlier-profile-e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Every folded line is `frame;frame;… <count>` with a positive integer
/// count; returns the parsed `(stack, count)` pairs.
fn parse_folded(text: &str) -> Vec<(String, u64)> {
    text.lines()
        .map(|line| {
            let (stack, count) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("malformed folded line: {line:?}"));
            let count: u64 = count
                .parse()
                .unwrap_or_else(|_| panic!("non-numeric count: {line:?}"));
            assert!(count > 0, "zero-count folded line: {line:?}");
            (stack.to_string(), count)
        })
        .collect()
}

#[test]
fn detect_profile_out_names_core_search_frames() {
    use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 4000,
        n_dims: 12,
        n_outliers: 5,
        strong_groups: Some(2),
        seed: 97,
        ..PlantedConfig::default()
    });
    let csv = temp_dir().join("profile-e2e.csv");
    hdoutlier_data::csv::write_path(&planted.dataset, &csv).expect("writable");
    let folded_path = temp_dir().join("profile-e2e.folded");

    let out = binary()
        .args([
            "detect",
            "--phi=8",
            "--k=3",
            "--m=5",
            "--search=brute",
            "--quiet",
            "--profile-out",
            folded_path.to_str().unwrap(),
            "--profile-hz",
            "997",
            csv.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let folded = std::fs::read_to_string(&folded_path).expect("profile written");
    let entries = parse_folded(&folded);
    assert!(!entries.is_empty(), "empty profile: {folded:?}");
    // The search dominates the run, so the sampler must have caught the
    // detector's spans — the acceptance frame for the whole feature.
    assert!(
        entries
            .iter()
            .any(|(stack, _)| stack.contains("hdoutlier.core.")),
        "no hdoutlier.core.* frame in:\n{folded}"
    );

    // The shipped binary carries the counting allocator, so the bytes-
    // weighted twin rides along whenever any bytes were attributed in the
    // window (the search allocates on every tree node, so they were).
    let bytes_path = format!("{}.bytes", folded_path.display());
    let bytes = std::fs::read_to_string(&bytes_path).expect("bytes twin written");
    assert!(!parse_folded(&bytes).is_empty(), "empty bytes profile");
}

#[test]
fn profile_hz_without_profile_out_is_a_usage_error() {
    let out = binary()
        .args(["detect", "--profile-hz=97", "/nonexistent.csv"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--profile-hz requires --profile-out"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
