//! End-to-end tests for `hdoutlier scenario`: the pack registry, the
//! golden-report gate (match, mismatch with a readable unified diff,
//! missing file), the deliberate update path, and the cross-thread
//! byte-identity property the whole suite rests on.

use hdoutlier_cli::json::Json;
use hdoutlier_cli::{exit, run};

/// The checked-in goldens, relative to this crate's manifest.
const GOLDENS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/goldens");

const PACKS: [&str; 6] = [
    "fraud-burst",
    "network-intrusion",
    "sensor-drift",
    "seasonal-shift",
    "adversarial-near-duplicates",
    "stress-high-phi-high-d",
];

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hdoutlier-scenario-e2e-{tag}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn list_names_every_pack() {
    let (code, out) = run(&argv(&["scenario", "list"]));
    assert_eq!(code, exit::OK, "{out}");
    for name in PACKS {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }

    let (code, out) = run(&argv(&["scenario", "list", "--json"]));
    assert_eq!(code, exit::OK, "{out}");
    let parsed = Json::parse(&out).unwrap_or_else(|e| panic!("{e}\n{out}"));
    let Json::Array(items) = parsed else {
        panic!("expected array: {out}")
    };
    assert_eq!(items.len(), PACKS.len());
    for item in &items {
        assert!(item.get("name").is_some() && item.get("seed").is_some());
    }
}

#[test]
fn check_passes_against_committed_goldens() {
    let (code, out) = run(&argv(&["scenario", "check", "--goldens-dir", GOLDENS]));
    assert_eq!(code, exit::OK, "{out}");
    for name in PACKS {
        assert!(out.contains(&format!("{name}: ok")), "{out}");
    }
}

#[test]
fn perturbed_golden_fails_with_readable_diff() {
    // Flip one verdict in a copy of a committed golden: the gate must fail
    // with a unified diff a reviewer can act on, plus regeneration steps.
    let dir = temp_dir("perturbed");
    let golden = std::fs::read_to_string(format!("{GOLDENS}/seasonal-shift.json")).unwrap();
    let perturbed = golden.replace("\"reset_after\": 150", "\"reset_after\": 151");
    assert_ne!(golden, perturbed, "perturbation did not apply");
    std::fs::write(dir.join("seasonal-shift.json"), perturbed).unwrap();

    let (code, out) = run(&argv(&[
        "scenario",
        "check",
        "seasonal-shift",
        "--goldens-dir",
        dir.to_str().unwrap(),
    ]));
    assert_eq!(code, exit::RUNTIME, "{out}");
    assert!(out.contains("differs from golden"), "{out}");
    assert!(out.contains("--- golden/seasonal-shift.json"), "{out}");
    assert!(out.contains("@@ -"), "{out}");
    assert!(out.contains("-      \"reset_after\": 151"), "{out}");
    assert!(out.contains("+      \"reset_after\": 150"), "{out}");
    assert!(
        out.contains("scenario update-goldens seasonal-shift"),
        "{out}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_golden_points_at_update_goldens() {
    let dir = temp_dir("missing");
    let (code, out) = run(&argv(&[
        "scenario",
        "check",
        "seasonal-shift",
        "--goldens-dir",
        dir.to_str().unwrap(),
    ]));
    assert_eq!(code, exit::RUNTIME, "{out}");
    assert!(out.contains("is missing"), "{out}");
    assert!(
        out.contains("scenario update-goldens seasonal-shift"),
        "{out}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn update_goldens_writes_then_reports_unchanged() {
    let dir = temp_dir("update");
    let args = [
        "scenario",
        "update-goldens",
        "seasonal-shift",
        "--goldens-dir",
        dir.to_str().unwrap(),
    ];
    let (code, out) = run(&argv(&args));
    assert_eq!(code, exit::OK, "{out}");
    assert!(out.contains("seasonal-shift: golden updated"), "{out}");
    assert!(dir.join("seasonal-shift.json").exists());

    let (code, out) = run(&argv(&args));
    assert_eq!(code, exit::OK, "{out}");
    assert!(out.contains("seasonal-shift: golden unchanged"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The determinism property the golden suite rests on: the same seeded
/// scenario produces byte-identical normalized reports at --threads 1, 2,
/// and 8. Exercised through the real CLI on packs covering the threaded
/// detect/baseline path and the streaming path.
#[test]
fn normalized_reports_are_byte_identical_across_thread_counts() {
    let mut per_thread: Vec<Vec<u8>> = Vec::new();
    for threads in ["1", "2", "8"] {
        let dir = temp_dir(&format!("threads-{threads}"));
        let (code, out) = run(&argv(&[
            "scenario",
            "update-goldens",
            "fraud-burst",
            "sensor-drift",
            "--goldens-dir",
            dir.to_str().unwrap(),
            "--threads",
            threads,
        ]));
        assert_eq!(code, exit::OK, "{out}");
        let mut bytes = std::fs::read(dir.join("fraud-burst.json")).unwrap();
        bytes.extend(std::fs::read(dir.join("sensor-drift.json")).unwrap());
        per_thread.push(bytes);
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(per_thread[0], per_thread[1], "threads=1 vs threads=2");
    assert_eq!(per_thread[0], per_thread[2], "threads=1 vs threads=8");
}

#[test]
fn unknown_pack_name_is_a_usage_error() {
    let (code, out) = run(&argv(&["scenario", "check", "no-such-pack"]));
    assert_eq!(code, exit::USAGE, "{out}");
    assert!(out.contains("unknown scenario"), "{out}");
    assert!(out.contains("fraud-burst"), "{out}");
}

#[test]
fn run_prints_a_full_report() {
    let (code, out) = run(&argv(&["scenario", "run", "seasonal-shift"]));
    assert_eq!(code, exit::OK, "{out}");
    let report = Json::parse(&out).unwrap_or_else(|e| panic!("{e}\n{out}"));
    assert_eq!(
        report.get("scenario").and_then(Json::as_str),
        Some("seasonal-shift")
    );
    assert!(report.get("invariants").is_some());
    // The raw report carries real wall-clock time; the golden layer scrubs it.
    assert!(report.get("elapsed_ms").is_some());
}
