//! End-to-end tests of the compiled `hdoutlier` binary — the real
//! argv/stdout/exit-code surface, including the detect → save-model → score
//! deployment loop.

use std::process::Command;

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hdoutlier"))
}

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("hdoutlier-binary-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn write_planted_csv(name: &str) -> std::path::PathBuf {
    use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 300,
        n_dims: 6,
        n_outliers: 3,
        strong_groups: Some(2),
        seed: 44,
        ..PlantedConfig::default()
    });
    let path = temp_dir().join(format!("{name}.csv"));
    hdoutlier_data::csv::write_path(&planted.dataset, &path).expect("writable");
    path
}

#[test]
fn help_and_unknown_command_exit_codes() {
    let out = binary().arg("help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = binary().arg("frobnicate").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = binary().output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn detect_save_score_deployment_loop() {
    let csv = write_planted_csv("binary-loop");
    let model = temp_dir().join("binary-loop.model.json");

    let out = binary()
        .args([
            "detect",
            "--phi=4",
            "--k=2",
            "--m=5",
            "--search=brute",
            "--save-model",
            model.to_str().unwrap(),
            "--quiet",
            csv.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let detected: Vec<usize> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.parse().expect("row index"))
        .collect();
    assert!(!detected.is_empty());
    assert!(model.exists());

    // Score the same file through the saved model: the detected rows must
    // all be flagged again (value-based reassignment on continuous data is
    // exact for in-sample rows).
    let out = binary()
        .args([
            "score",
            "--model",
            model.to_str().unwrap(),
            "--json",
            csv.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    for row in &detected {
        assert!(
            text.contains(&format!("\"row\": {row}")),
            "row {row} missing from score output:\n{text}"
        );
    }
}

#[test]
fn advise_runs_standalone() {
    let out = binary()
        .args(["advise", "--records", "452"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("phi ="), "{text}");
}

#[test]
fn runtime_errors_go_to_stderr_with_code_1() {
    let out = binary()
        .args(["detect", "/definitely/not/a/file.csv"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(out.stdout.is_empty());
    assert!(String::from_utf8_lossy(&out.stderr).contains("failed to read"));
}
