//! Robustness tests for the CLI: the argument parser and JSON writer must
//! never panic, and the top-level dispatcher must return a sane exit code on
//! arbitrary argument vectors.

use hdoutlier_cli::args::Spec;
use hdoutlier_cli::json::Json;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arg_parser_never_panics(
        argv in proptest::collection::vec("[-=a-z0-9 ]{0,12}", 0..10),
    ) {
        let spec = Spec::new(&["phi", "k", "input"], &["json", "quiet"]);
        let _ = spec.parse(&argv);
    }

    #[test]
    fn dispatcher_never_panics_and_exit_codes_are_sane(
        argv in proptest::collection::vec("[-=a-z0-9.]{0,10}", 0..6),
    ) {
        // No positional argument ever names an existing file here (no '/'),
        // so nothing is read; the dispatcher must still behave.
        let (code, out) = hdoutlier_cli::run(&argv);
        prop_assert!([0, 1, 2].contains(&code), "exit {code}");
        prop_assert!(!out.is_empty());
    }

    #[test]
    fn json_strings_round_trip_through_escaping(s in ".{0,40}") {
        let rendered = Json::from(s.clone()).render();
        prop_assert!(rendered.starts_with('"') && rendered.ends_with('"'));
        // No raw control characters or unescaped quotes inside.
        let inner = &rendered[1..rendered.len() - 1];
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                chars.next(); // escape consumed
                continue;
            }
            prop_assert!(c != '"', "unescaped quote in {rendered:?}");
            prop_assert!((c as u32) >= 0x20, "raw control char in {rendered:?}");
        }
    }

    #[test]
    fn json_numbers_render_finitely(n in proptest::num::f64::ANY) {
        let rendered = Json::from(n).render();
        prop_assert!(!rendered.is_empty());
        if n.is_finite() {
            // Parsable back as f64 (approximately round-trips).
            let back: f64 = rendered.parse().unwrap();
            if n != 0.0 {
                prop_assert!(((back - n) / n).abs() < 1e-9, "{n} -> {rendered}");
            }
        } else {
            prop_assert_eq!(rendered, "null");
        }
    }

    #[test]
    fn json_nesting_balances(depth in 1usize..8) {
        let mut j = Json::object().field("leaf", 1usize);
        for i in 0..depth {
            j = Json::object().field(&format!("level{i}"), j);
        }
        let s = j.render();
        prop_assert_eq!(s.matches('{').count(), depth + 1);
        prop_assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
