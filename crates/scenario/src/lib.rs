#![warn(missing_docs)]

//! Named, seeded end-to-end scenario packs with golden-report regression
//! checks.
//!
//! The paper's claims live or die on end-to-end behavior: the
//! sparsity-coefficient search finding the planted subspace outliers that
//! distance-based methods miss. Each pack here synthesizes a dataset with
//! **known planted ground truth** from a fixed seed, drives the *real*
//! pipelines (batch detection brute + evolutionary, record drill-down,
//! distance baselines, streaming with checkpoint/kill/resume, `serve` over
//! loopback TCP), and emits one JSON report. Two independent nets catch
//! regressions:
//!
//! - **Golden files** (`tests/goldens/<name>.json`): the normalized report
//!   ([`hdoutlier_json::normalize`] scrubs wall-clock fields) is
//!   byte-compared against a checked-in snapshot, so *any* behavioral
//!   change — a score, a ranking, a verdict bit — fails CI with a unified
//!   diff. Regeneration is deliberate: `hdoutlier scenario update-goldens`.
//! - **Semantic invariants**: each pack asserts ground-truth properties
//!   (planted rows recovered, precision/recall floors per method, drift
//!   alarms firing only in the drifted window, resume byte-identity) so a
//!   golden that was wrong to begin with cannot be silently enshrined —
//!   `update-goldens` refuses to write while an invariant fails.
//!
//! Every pack also carries at least one **cross-method referee** from
//! [`hdoutlier_baselines`] — CFOF (reverse-kNN rank) or DOD
//! (distance-profile deviation) — marking where the paper's sparsity
//! coefficient is expected to win *and where it is expected to lose*
//! (systemic shifts that leave every subspace locally plausible).
//!
//! Reports are deterministic by construction: seeded generators, total-order
//! merges, and thread-count-invariant pipelines, so the same scenario
//! produces byte-identical normalized reports at `--threads 1/2/8`.

pub mod diff;
pub mod golden;
pub mod http;
pub mod packs;
pub mod report;
pub mod synth;

use hdoutlier_json::Json;
use std::fmt;

/// Knobs shared by every scenario run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Pool threads handed to every threaded pipeline stage. The report
    /// must not depend on it — the CLI's cross-thread test enforces that.
    pub threads: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { threads: 1 }
    }
}

/// One semantic ground-truth assertion evaluated by a pack.
#[derive(Debug, Clone)]
pub struct Invariant {
    /// Stable kebab-case identifier, e.g. `planted-recovered`.
    pub name: String,
    /// Whether the assertion held on this run.
    pub holds: bool,
    /// Human-readable evidence (the observed numbers).
    pub detail: String,
}

impl Invariant {
    /// Records an assertion outcome.
    pub fn check(name: &str, holds: bool, detail: impl Into<String>) -> Invariant {
        Invariant {
            name: name.to_string(),
            holds,
            detail: detail.into(),
        }
    }
}

/// What a scenario run produced: the full JSON report (with the
/// invariants embedded under `"invariants"`) plus the typed list for
/// programmatic gating.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The full report, golden-comparable after normalization.
    pub report: Json,
    /// The semantic assertions, in evaluation order.
    pub invariants: Vec<Invariant>,
}

impl Outcome {
    /// The invariants that did not hold.
    pub fn failed_invariants(&self) -> Vec<&Invariant> {
        self.invariants.iter().filter(|i| !i.holds).collect()
    }
}

/// A pipeline stage failed in a way ground truth cannot explain.
#[derive(Debug)]
pub struct ScenarioError(pub String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario pipeline failed: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

/// Wraps any pipeline error into a [`ScenarioError`]; packs use it as
/// `map_err(pipe)`.
pub fn pipe<E: fmt::Display>(e: E) -> ScenarioError {
    ScenarioError(e.to_string())
}

/// The signature every pack's pipeline driver has.
pub type RunFn = fn(&RunConfig) -> Result<Outcome, ScenarioError>;

/// A named, seeded scenario pack.
pub struct Scenario {
    /// Stable kebab-case name — also the golden file stem.
    pub name: &'static str,
    /// One-line description for `scenario list`.
    pub summary: &'static str,
    /// The seed every generator and search in the pack derives from.
    pub seed: u64,
    run: RunFn,
}

impl Scenario {
    /// Builds a pack descriptor. Exposed so harnesses can define synthetic
    /// packs — e.g. to test the golden gate's invariant guard itself.
    pub fn new(name: &'static str, summary: &'static str, seed: u64, run: RunFn) -> Scenario {
        Scenario {
            name,
            summary,
            seed,
            run,
        }
    }

    /// Runs the pack's pipelines and invariants.
    ///
    /// # Errors
    /// [`ScenarioError`] when a pipeline stage itself fails (as opposed to
    /// an invariant not holding, which is reported in the [`Outcome`]).
    pub fn run(&self, config: &RunConfig) -> Result<Outcome, ScenarioError> {
        (self.run)(config)
    }
}

/// The full registry, in canonical order (golden directories and docs
/// follow it).
pub fn all() -> Vec<Scenario> {
    packs::all()
}

/// Looks a pack up by name.
pub fn find(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}
