//! Golden-file plumbing: where goldens live, how a report becomes golden
//! bytes, and the compare/update primitives the CLI `scenario` subcommand
//! drives.

use crate::diff;
use hdoutlier_json::normalize::normalize_report;
use hdoutlier_json::Json;
use std::io;
use std::path::{Path, PathBuf};

/// Context lines around each hunk in mismatch diffs.
const DIFF_CONTEXT: usize = 3;

/// The golden file for a pack: `<dir>/<name>.json`.
pub fn golden_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.json"))
}

/// The exact bytes a golden file holds: the normalized report, pretty,
/// with a trailing newline. Normalization makes the rendering a fixed
/// point — a golden read back from disk re-renders to itself.
pub fn render_golden(report: &Json) -> String {
    let mut text = normalize_report(report).pretty();
    text.push('\n');
    text
}

/// The result of comparing a run against its golden.
#[derive(Debug)]
pub enum CheckOutcome {
    /// Byte-identical.
    Match,
    /// No golden on disk yet (a new pack, or a clean checkout problem).
    Missing {
        /// Where the golden was expected.
        path: PathBuf,
    },
    /// Bytes differ.
    Mismatch {
        /// The golden that was compared against.
        path: PathBuf,
        /// Unified diff, golden on the `-` side, this run on the `+` side.
        diff: String,
    },
}

/// Compares a report against the checked-in golden.
///
/// # Errors
/// Propagates I/O errors other than the golden simply not existing.
pub fn check(dir: &Path, name: &str, report: &Json) -> io::Result<CheckOutcome> {
    let path = golden_path(dir, name);
    let expected = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(CheckOutcome::Missing { path }),
        Err(e) => return Err(e),
    };
    let actual = render_golden(report);
    if expected == actual {
        return Ok(CheckOutcome::Match);
    }
    let label = format!("golden/{name}.json");
    let diff = diff::unified(&label, &expected, "this run", &actual, DIFF_CONTEXT);
    Ok(CheckOutcome::Mismatch { path, diff })
}

/// Writes (or rewrites) the golden; returns whether the bytes changed.
/// Callers gate this behind the pack's invariants — a failing scenario
/// must never be enshrined as the expectation.
///
/// # Errors
/// Propagates I/O errors creating the directory or writing the file.
pub fn update(dir: &Path, name: &str, report: &Json) -> io::Result<bool> {
    let path = golden_path(dir, name);
    let actual = render_golden(report);
    let changed = match std::fs::read_to_string(&path) {
        Ok(existing) => existing != actual,
        Err(e) if e.kind() == io::ErrorKind::NotFound => true,
        Err(e) => return Err(e),
    };
    if changed {
        std::fs::create_dir_all(dir)?;
        std::fs::write(&path, actual)?;
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_json::FieldChain;

    fn sample_report(work: f64) -> Json {
        Json::object()
            .field("scenario", "t")
            .field("elapsed_ms", 123.5)
            .field("work", work)
            .unwrap()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("hdoutlier-golden-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn update_then_check_round_trips() {
        let dir = temp_dir("round-trip");
        assert!(update(&dir, "t", &sample_report(7.0)).unwrap());
        // Identical content: no rewrite reported.
        assert!(!update(&dir, "t", &sample_report(7.0)).unwrap());
        assert!(matches!(
            check(&dir, "t", &sample_report(7.0)).unwrap(),
            CheckOutcome::Match
        ));
    }

    #[test]
    fn elapsed_changes_do_not_break_the_match() {
        let dir = temp_dir("volatile");
        update(&dir, "t", &sample_report(7.0)).unwrap();
        let mut rerun = sample_report(7.0);
        if let Json::Object(fields) = &mut rerun {
            fields[1].1 = Json::Number(9999.0); // a different wall clock
        }
        assert!(matches!(
            check(&dir, "t", &rerun).unwrap(),
            CheckOutcome::Match
        ));
    }

    #[test]
    fn semantic_changes_produce_a_readable_diff() {
        let dir = temp_dir("mismatch");
        update(&dir, "t", &sample_report(7.0)).unwrap();
        match check(&dir, "t", &sample_report(8.0)).unwrap() {
            CheckOutcome::Mismatch { diff, .. } => {
                assert!(diff.contains("-  \"work\": 7"), "{diff}");
                assert!(diff.contains("+  \"work\": 8"), "{diff}");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn missing_golden_is_distinguished_from_mismatch() {
        let dir = temp_dir("missing");
        assert!(matches!(
            check(&dir, "t", &sample_report(1.0)).unwrap(),
            CheckOutcome::Missing { .. }
        ));
    }
}
