//! Report assembly shared by the packs: fingerprints, ground-truth
//! metrics, and the common envelope every golden file follows.

use crate::Invariant;
use hdoutlier_core::OutlierReport;
use hdoutlier_data::Dataset;
use hdoutlier_json::{FieldChain, Json};

/// FNV-1a over a byte stream — the same cheap stable hash the serve replay
/// cache uses. Keeps large artifacts (datasets, NDJSON verdict streams)
/// out of the goldens while still pinning their exact bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Renders a 64-bit fingerprint the way goldens store it.
pub fn hex64(x: u64) -> String {
    format!("{x:016x}")
}

/// Fingerprint of a text artifact (an NDJSON verdict stream, a rendered
/// report).
pub fn fingerprint_text(text: &str) -> String {
    hex64(fnv1a(text.as_bytes()))
}

/// Fingerprint of a dataset: the IEEE bit patterns of every value in row
/// order, so any generator drift — one bit in one cell — changes it.
pub fn fingerprint_dataset(ds: &Dataset) -> String {
    let mut bytes = Vec::with_capacity(ds.n_rows() * ds.n_dims() * 8);
    for row in ds.rows() {
        for &v in row {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    hex64(fnv1a(&bytes))
}

/// Row indices of the `m` largest scores, descending; ties break by row
/// index so the ranking is total.
pub fn top_rows(scores: &[f64], m: usize) -> Vec<usize> {
    let mut rows: Vec<usize> = (0..scores.len()).collect();
    rows.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    rows.truncate(m);
    rows
}

/// Fraction of `reported` rows that are planted. 1.0 for an empty report
/// (no false positives).
pub fn precision(planted: &[usize], reported: &[usize]) -> f64 {
    if reported.is_empty() {
        return 1.0;
    }
    let hits = reported.iter().filter(|r| planted.contains(r)).count();
    hits as f64 / reported.len() as f64
}

/// Fraction of planted rows that were reported. 1.0 when nothing was
/// planted.
pub fn recall(planted: &[usize], reported: &[usize]) -> f64 {
    if planted.is_empty() {
        return 1.0;
    }
    let hits = planted.iter().filter(|p| reported.contains(p)).count();
    hits as f64 / planted.len() as f64
}

/// A JSON array of row indices.
pub fn rows_json(rows: &[usize]) -> Json {
    Json::Array(rows.iter().map(|&r| Json::from(r)).collect())
}

/// One method's verdict against ground truth: the rows it reported plus
/// precision/recall.
pub fn metrics_json(planted: &[usize], reported: &[usize]) -> Json {
    Json::object()
        .field("rows", rows_json(reported))
        .field("precision", precision(planted, reported))
        .field("recall", recall(planted, reported))
        .unwrap()
}

/// The `"dataset"` section: shape, planted ground truth, and the
/// value-exact fingerprint.
pub fn dataset_json(ds: &Dataset, planted: &[usize]) -> Json {
    Json::object()
        .field("rows", ds.n_rows())
        .field("dims", ds.n_dims())
        .field("planted", rows_json(planted))
        .field("fingerprint", fingerprint_dataset(ds))
        .unwrap()
}

/// The detection section for one [`OutlierReport`]: found projections
/// (string genome, sparsity, occupancy), flagged rows, and the
/// thread-invariant search counters. `stats.elapsed` is deliberately
/// excluded — wall clock has no place in a golden-comparable section.
pub fn detect_json(report: &OutlierReport) -> Json {
    let projections: Vec<Json> = report
        .projections
        .iter()
        .map(|p| {
            Json::object()
                .field("projection", p.projection.to_string())
                .field("sparsity", p.sparsity)
                .field("count", p.count)
                .unwrap()
        })
        .collect();
    Json::object()
        .field("projections", Json::Array(projections))
        .field("outlier_rows", rows_json(&report.outlier_rows))
        .field("work", report.stats.work)
        .field("generations", report.stats.generations)
        .field("completed", report.stats.completed)
        .unwrap()
}

/// The `"invariants"` section: every assertion with its outcome and the
/// observed evidence, so a reviewer reading the golden sees *why* the
/// numbers are what they are.
pub fn invariants_json(invariants: &[Invariant]) -> Json {
    Json::Array(
        invariants
            .iter()
            .map(|i| {
                Json::object()
                    .field("name", i.name.as_str())
                    .field("holds", i.holds)
                    .field("detail", i.detail.as_str())
                    .unwrap()
            })
            .collect(),
    )
}

/// The common report envelope. `elapsed_ms` is raw wall clock here — the
/// golden path scrubs it via [`hdoutlier_json::normalize`], which is
/// exactly what makes normalization load-bearing.
pub fn envelope(
    name: &str,
    seed: u64,
    elapsed_ms: f64,
    dataset: Json,
    pipelines: Json,
    referees: Json,
    invariants: &[Invariant],
) -> Json {
    Json::object()
        .field("scenario", name)
        .field("seed", seed)
        .field("elapsed_ms", elapsed_ms)
        .field("dataset", dataset)
        .field("pipelines", pipelines)
        .field("referees", referees)
        .field("invariants", invariants_json(invariants))
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn top_rows_orders_by_score_then_row() {
        let scores = [0.5, 2.0, 2.0, 0.1];
        assert_eq!(top_rows(&scores, 3), vec![1, 2, 0]);
    }

    #[test]
    fn precision_recall_agree_with_hand_counts() {
        let planted = [3, 7, 9];
        let reported = [7, 9, 11, 12];
        assert!((precision(&planted, &reported) - 0.5).abs() < 1e-12);
        assert!((recall(&planted, &reported) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision(&planted, &[]), 1.0);
        assert_eq!(recall(&[], &reported), 1.0);
    }
}
