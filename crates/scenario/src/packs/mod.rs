//! The scenario registry: six named, seeded packs covering the pipeline
//! surface — batch detection (brute + evolutionary), record drill-down,
//! distance baselines and referees, streaming with drift and
//! checkpoint/kill/resume, and `serve` over loopback TCP.

mod adversarial_near_duplicates;
mod fraud_burst;
mod network_intrusion;
mod seasonal_shift;
mod sensor_drift;
mod stress_high_phi_high_d;

use crate::Scenario;

/// Every pack, in canonical order.
pub fn all() -> Vec<Scenario> {
    vec![
        fraud_burst::scenario(),
        network_intrusion::scenario(),
        sensor_drift::scenario(),
        seasonal_shift::scenario(),
        adversarial_near_duplicates::scenario(),
        stress_high_phi_high_d::scenario(),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_names_are_unique_and_kebab_case() {
        let packs = super::all();
        assert!(packs.len() >= 6);
        let mut names: Vec<&str> = packs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), packs.len(), "duplicate scenario name");
        for name in names {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "name {name} is not kebab-case"
            );
        }
    }
}
