//! **network-intrusion** — low-and-slow intrusions planted in a wide
//! telemetry feed: contrarian inside two strongly-correlated feature
//! groups (bytes-in vs. bytes-out, connections vs. distinct ports),
//! invisible marginally. Exercises brute-force detection plus the
//! analyst-facing drill-down (`record_profile` + intensional `explain`),
//! with DOD refereeing from the distance-profile side.

use crate::report::{
    dataset_json, detect_json, envelope, metrics_json, recall, rows_json, top_rows,
};
use crate::{pipe, Invariant, Outcome, RunConfig, Scenario, ScenarioError};
use hdoutlier_baselines::{dod_scores_threaded, Metric};
use hdoutlier_core::drill::record_profile_threaded;
use hdoutlier_core::{OutlierDetector, SearchMethod};
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_index::BitmapCounter;
use hdoutlier_json::{FieldChain, Json};
use std::time::Instant;

const SEED: u64 = 0x1275;
const PHI: u32 = 4;

/// The pack descriptor.
pub fn scenario() -> Scenario {
    Scenario {
        name: "network-intrusion",
        summary: "planted intrusions in wide telemetry; detection plus record drill-down and intensional explain, DOD referees",
        seed: SEED,
        run,
    }
}

fn run(config: &RunConfig) -> Result<Outcome, ScenarioError> {
    let start = Instant::now();
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 500,
        n_dims: 12,
        n_outliers: 4,
        strong_groups: Some(2),
        seed: SEED,
        ..PlantedConfig::default()
    });
    let ds = &planted.dataset;
    let truth = &planted.outlier_rows;

    let detection = OutlierDetector::builder()
        .phi(PHI)
        .k(2)
        .m(6)
        .search(SearchMethod::BruteForce)
        .threads(config.threads)
        .build()
        .detect(ds)
        .map_err(pipe)?;
    let det_recall = recall(truth, &detection.outlier_rows);

    // Analyst drill-down on the first planted row the detector actually
    // flagged: in which views is *this record* abnormal?
    let disc = Discretized::new(ds, PHI, DiscretizeStrategy::EquiDepth).map_err(pipe)?;
    let counter = BitmapCounter::new(&disc);
    let drilled_row = truth
        .iter()
        .copied()
        .find(|r| detection.outlier_rows.contains(r))
        .unwrap_or(truth[0]);
    let profile = record_profile_threaded(&counter, &disc, drilled_row, &[1, 2], config.threads);
    let top_views: Vec<Json> = profile
        .iter()
        .take(3)
        .map(|v| {
            Json::object()
                .field(
                    "dims",
                    Json::Array(
                        v.cube
                            .dims()
                            .iter()
                            .map(|&d| Json::from(d as usize))
                            .collect(),
                    ),
                )
                .field("count", v.count)
                .field("sparsity", v.sparsity)
                .field("exact_significance", v.exact_significance)
                .unwrap()
        })
        .collect();
    let best_significance = profile.first().map_or(1.0, |v| v.exact_significance);
    let explain_text = if detection.projections.is_empty() {
        String::new()
    } else {
        detection.explain(0, &disc)
    };

    let dod = dod_scores_threaded(ds, Metric::Euclidean, config.threads).map_err(pipe)?;
    let dod_rows = top_rows(&dod, truth.len());
    let dod_recall = recall(truth, &dod_rows);

    let invariants = vec![
        Invariant::check(
            "planted-recovered",
            det_recall >= 0.75,
            format!("brute-force recall {det_recall:.2} (floor 0.75) over {} intrusions", truth.len()),
        ),
        Invariant::check(
            "drill-down-isolates-the-intrusion",
            best_significance < 0.05,
            format!(
                "record {drilled_row}'s most abnormal view has exact significance {best_significance:.6} (< 0.05)"
            ),
        ),
        Invariant::check(
            "explain-names-a-projection",
            !explain_text.is_empty(),
            format!("intensional description is {} chars", explain_text.len()),
        ),
        Invariant::check(
            "dod-referee-does-not-beat-subspace",
            dod_recall <= det_recall,
            format!("DOD top-{} recall {dod_recall:.2} vs subspace {det_recall:.2} — locally contrarian rows barely move a full distance profile", truth.len()),
        ),
    ];

    let pipelines = Json::object()
        .field("detect_brute", detect_json(&detection))
        .field(
            "drill_down",
            Json::object()
                .field("row", drilled_row)
                .field("top_views", Json::Array(top_views))
                .unwrap(),
        )
        .field("explain", explain_text)
        .unwrap();
    let referees = Json::Array(vec![Json::object()
        .field("method", "dod")
        .field("verdict", metrics_json(truth, &dod_rows))
        .field("top_rows", rows_json(&dod_rows))
        .unwrap()]);

    let report = envelope(
        "network-intrusion",
        SEED,
        start.elapsed().as_secs_f64() * 1000.0,
        dataset_json(ds, truth),
        pipelines,
        referees,
        &invariants,
    );
    Ok(Outcome { report, invariants })
}
