//! **stress-high-phi-high-d** — the detector far from its defaults: 24
//! dimensions at φ = 8, where brute force's `C(d, k) · φ^k` cube space is
//! the evolutionary search's reason to exist. Ground truth carries two
//! distinct anomaly species: contrarian plants (one correlated pair
//! rewritten — the subspace detector's prey) and **systemic rows** shifted
//! +1.1σ in *every* dimension, which stay locally plausible in each small
//! subspace. DOD referees the split: it must flag the systemic rows the
//! subspace detector is structurally blind to — the honest complement to
//! the paper's claim. The fitted model is then hosted by `serve` over real
//! loopback TCP and its verdict stream must be byte-identical to a direct
//! scorer.

use crate::report::{
    dataset_json, detect_json, envelope, fingerprint_text, metrics_json, recall, rows_json,
    top_rows,
};
use crate::synth::{factor_row, standard_normal};
use crate::{http, pipe, Invariant, Outcome, RunConfig, Scenario, ScenarioError};
use hdoutlier_baselines::{dod_scores_threaded, Metric};
use hdoutlier_core::{OutlierDetector, SearchMethod};
use hdoutlier_data::Dataset;
use hdoutlier_json::{FieldChain, Json};
use hdoutlier_rng::rngs::StdRng;
use hdoutlier_rng::SeedableRng;
use hdoutlier_serve::{ServeConfig, ServeHandle};
use hdoutlier_stream::ndjson::verdict_json;
use hdoutlier_stream::OnlineScorer;
use std::time::Instant;

const SEED: u64 = 0x57E5;
const N_BASE: usize = 700;
const N_DIMS: usize = 24;
const GROUP_SIZE: usize = 3;
const STRONG_GROUPS: usize = 2;
const N_CONTRARIAN: usize = 4;
const N_SYSTEMIC: usize = 3;
const PHI: u32 = 8;
/// Contrarian magnitude (~90th percentile per side).
const Z: f64 = 1.28;
/// The systemic species: every dimension up by this much.
const SYSTEMIC_SHIFT: f64 = 1.1;
/// Rows served over loopback.
const SERVED_ROWS: usize = 100;
/// DOD referee shortlist size.
const DOD_TOP: usize = 5;

/// The pack descriptor.
pub fn scenario() -> Scenario {
    Scenario {
        name: "stress-high-phi-high-d",
        summary: "d=24, phi=8 evolutionary stress with contrarian + systemic species; DOD flags what subspace cannot, serve is byte-identical over TCP",
        seed: SEED,
        run,
    }
}

struct Synth {
    dataset: Dataset,
    contrarian: Vec<usize>,
    systemic: Vec<usize>,
}

fn synthesize() -> Synth {
    let mut rng = StdRng::seed_from_u64(SEED);
    let strength = |g: usize| if g < STRONG_GROUPS { 0.9 } else { 0.4 };
    let mut rows: Vec<Vec<f64>> = (0..N_BASE)
        .map(|_| factor_row(&mut rng, N_DIMS, GROUP_SIZE, strength))
        .collect();
    let mut contrarian = Vec::with_capacity(N_CONTRARIAN);
    for i in 0..N_CONTRARIAN {
        let mut row = factor_row(&mut rng, N_DIMS, GROUP_SIZE, strength);
        let base = (i % STRONG_GROUPS) * GROUP_SIZE;
        row[base] = -Z + 0.02 * standard_normal(&mut rng);
        row[base + 1] = Z + 0.02 * standard_normal(&mut rng);
        contrarian.push(rows.len());
        rows.push(row);
    }
    let mut systemic = Vec::with_capacity(N_SYSTEMIC);
    for _ in 0..N_SYSTEMIC {
        let mut row = factor_row(&mut rng, N_DIMS, GROUP_SIZE, strength);
        for v in row.iter_mut() {
            *v += SYSTEMIC_SHIFT;
        }
        systemic.push(rows.len());
        rows.push(row);
    }
    Synth {
        dataset: Dataset::from_rows(rows).expect("shape"),
        contrarian,
        systemic,
    }
}

/// NDJSON record lines for dataset rows `range`, rendered exactly as the
/// serve tests and CLI do (so floats round-trip identically).
fn ndjson_rows(ds: &Dataset, range: std::ops::Range<usize>) -> String {
    let mut out = String::new();
    for i in range {
        let row = Json::Array(ds.row(i).iter().map(|&v| Json::from(v)).collect());
        out.push_str(&row.render());
        out.push('\n');
    }
    out
}

fn run(config: &RunConfig) -> Result<Outcome, ScenarioError> {
    let start = Instant::now();
    let synth = synthesize();
    let ds = &synth.dataset;

    let detector = OutlierDetector::builder()
        .phi(PHI)
        .k(2)
        .m(16)
        .search(SearchMethod::Evolutionary)
        .population(200)
        .max_generations(300)
        .seed(SEED)
        .threads(config.threads)
        .build();
    let detection = detector.detect(ds).map_err(pipe)?;
    let contrarian_recall = recall(&synth.contrarian, &detection.outlier_rows);
    let systemic_flagged = synth
        .systemic
        .iter()
        .filter(|r| detection.outlier_rows.contains(r))
        .count();

    // DOD referee: the systemic species drags its whole distance profile
    // away from the consensus — exactly what the subspace detector, which
    // only ever sees k dimensions at a time, is structurally blind to.
    let dod = dod_scores_threaded(ds, Metric::Euclidean, config.threads).map_err(pipe)?;
    let dod_top = top_rows(&dod, DOD_TOP);
    let systemic_in_dod_top = synth
        .systemic
        .iter()
        .filter(|r| dod_top.contains(r))
        .count();

    // Serve the fitted model over real loopback TCP: session create, two
    // score batches, drain. The served verdicts must be byte-identical to
    // a direct scorer over the same rows.
    let model = detector.fit(ds).map_err(pipe)?;
    let mut reference = String::new();
    let mut scorer = OnlineScorer::new(model.clone()).map_err(pipe)?;
    for i in 0..SERVED_ROWS {
        let verdict = scorer.score_record(ds.row(i)).map_err(pipe)?;
        reference.push_str(&verdict_json(&verdict, &scorer).map_err(pipe)?.render());
        reference.push('\n');
    }
    let serve_config = ServeConfig {
        threads: config.threads,
        checkpoint_dir: None,
        ..ServeConfig::default()
    };
    let handle = ServeHandle::bind("127.0.0.1:0", serve_config).map_err(pipe)?;
    let addr = handle.local_addr();
    let model_json = hdoutlier_stream::model_io::to_json(&model)
        .map_err(pipe)?
        .render();
    let (status, body) = http::request(
        addr,
        "POST",
        "/sessions",
        None,
        &format!("{{\"id\": \"stress\", \"model\": {model_json}}}"),
    )
    .map_err(pipe)?;
    if status != 201 {
        return Err(ScenarioError(format!(
            "session create failed ({status}): {body}"
        )));
    }
    let mut served = String::new();
    for (request_id, range) in [
        ("stress-batch-a", 0..40),
        ("stress-batch-b", 40..SERVED_ROWS),
    ] {
        let (status, body) = http::request(
            addr,
            "POST",
            "/sessions/stress/score",
            Some(request_id),
            &ndjson_rows(ds, range),
        )
        .map_err(pipe)?;
        if status != 200 {
            return Err(ScenarioError(format!("score failed ({status}): {body}")));
        }
        served.push_str(&body);
    }
    let drain = handle.drain();
    let serve_identical = served == reference;

    let invariants = vec![
        Invariant::check(
            "evolutionary-recovers-contrarians",
            contrarian_recall >= 0.75,
            format!(
                "evolutionary recall {contrarian_recall:.2} (floor 0.75) over {N_CONTRARIAN} contrarian plants at d={N_DIMS}, phi={PHI}"
            ),
        ),
        Invariant::check(
            "dod-referee-flags-systemic-rows",
            systemic_in_dod_top >= 2,
            format!(
                "{systemic_in_dod_top}/{N_SYSTEMIC} systemic rows in DOD top-{DOD_TOP} (floor 2)"
            ),
        ),
        Invariant::check(
            "subspace-is-blind-to-systemic-rows",
            systemic_flagged <= 1,
            format!(
                "{systemic_flagged}/{N_SYSTEMIC} systemic rows flagged by the subspace detector (ceiling 1): every k-dim view of a uniform shift stays plausible — the honest complement"
            ),
        ),
        Invariant::check(
            "served-verdicts-byte-identical",
            serve_identical,
            format!(
                "{SERVED_ROWS} records over loopback TCP in 2 batches: served stream {} direct scorer ({} bytes)",
                if serve_identical { "matches" } else { "DIFFERS FROM" },
                reference.len()
            ),
        ),
    ];

    let pipelines = Json::object()
        .field("detect_evolutionary", detect_json(&detection))
        .field(
            "detect_vs_species",
            Json::object()
                .field(
                    "contrarian",
                    metrics_json(&synth.contrarian, &detection.outlier_rows),
                )
                .field("systemic_flagged", systemic_flagged)
                .unwrap(),
        )
        .field(
            "serve",
            Json::object()
                .field("records", SERVED_ROWS)
                .field("batches", 2u32)
                .field("byte_identical", serve_identical)
                .field("verdict_fingerprint", fingerprint_text(&served))
                .field("sessions_drained", drain.sessions)
                .unwrap(),
        )
        .unwrap();
    let referees = Json::Array(vec![Json::object()
        .field("method", "dod")
        .field("top_rows", rows_json(&dod_top))
        .field("systemic_rows", rows_json(&synth.systemic))
        .field("systemic_in_top", systemic_in_dod_top)
        .unwrap()]);

    // Planted ground truth = both species, in row order.
    let mut planted = synth.contrarian.clone();
    planted.extend(&synth.systemic);
    let report = envelope(
        "stress-high-phi-high-d",
        SEED,
        start.elapsed().as_secs_f64() * 1000.0,
        dataset_json(ds, &planted),
        pipelines,
        referees,
        &invariants,
    );
    Ok(Outcome { report, invariants })
}
