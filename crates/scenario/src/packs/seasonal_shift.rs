//! **seasonal-shift** — a feed with a known seasonal boundary: season A
//! matches training, then the process legitimately moves (+1.8σ on two
//! dimensions). The operator acknowledges the boundary with a drift reset;
//! the monitor must stay silent through season A, and — because the reset
//! re-bases the occupancy statistics — fire on season B's shifted
//! dimensions from fresh evidence alone. CFOF referees the point-scoring
//! side: a population-level shift produces **no individual outliers**, so
//! rank-based point scores barely move — the complementary claim that
//! drift detection, not outlier scoring, owns this failure mode.

use crate::report::{dataset_json, envelope, fingerprint_text};
use crate::synth::factor_row;
use crate::{pipe, Invariant, Outcome, RunConfig, Scenario, ScenarioError};
use hdoutlier_baselines::{cfof_scores_threaded, Metric};
use hdoutlier_core::{OutlierDetector, SearchMethod};
use hdoutlier_data::Dataset;
use hdoutlier_json::{FieldChain, Json};
use hdoutlier_rng::rngs::StdRng;
use hdoutlier_rng::SeedableRng;
use hdoutlier_stream::ndjson::verdict_json;
use hdoutlier_stream::OnlineScorer;
use std::time::Instant;

const SEED: u64 = 0x5EA5;
const N_DIMS: usize = 5;
const TRAIN_ROWS: usize = 400;
const SEASON_ROWS: usize = 150;
const SHIFTED_DIMS: [usize; 2] = [2, 3];
const SHIFT: f64 = 1.8;
const CHECK_EVERY: u64 = 75;

/// The pack descriptor.
pub fn scenario() -> Scenario {
    Scenario {
        name: "seasonal-shift",
        summary: "legitimate seasonal move with an operator drift reset; alarms only in the new season, CFOF shows no point outliers",
        seed: SEED,
        run,
    }
}

fn synthesize() -> (Dataset, Dataset, Dataset) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let strength = |_g: usize| 0.5;
    let mut gen_rows = |n: usize, shifted: bool| -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                let mut row = factor_row(&mut rng, N_DIMS, N_DIMS, strength);
                if shifted {
                    for &d in &SHIFTED_DIMS {
                        row[d] += SHIFT;
                    }
                }
                row
            })
            .collect()
    };
    let train = gen_rows(TRAIN_ROWS, false);
    let season_a = gen_rows(SEASON_ROWS, false);
    let season_b = gen_rows(SEASON_ROWS, true);
    (
        Dataset::from_rows(train).expect("train shape"),
        Dataset::from_rows(season_a).expect("season A shape"),
        Dataset::from_rows(season_b).expect("season B shape"),
    )
}

fn run(config: &RunConfig) -> Result<Outcome, ScenarioError> {
    let start = Instant::now();
    let (train, season_a, season_b) = synthesize();
    let model = OutlierDetector::builder()
        .phi(4)
        .k(2)
        .m(5)
        .search(SearchMethod::BruteForce)
        .threads(config.threads)
        .build()
        .fit(&train)
        .map_err(pipe)?;

    let mut scorer = OnlineScorer::new(model).map_err(pipe)?;
    scorer.set_check_every(CHECK_EVERY).map_err(pipe)?;
    let mut ndjson = String::new();
    let mut checks: Vec<(u64, bool, Vec<usize>, &'static str)> = Vec::new();
    let mut score_season = |scorer: &mut OnlineScorer,
                            season: &Dataset,
                            label: &'static str,
                            ndjson: &mut String|
     -> Result<(), ScenarioError> {
        for i in 0..season.n_rows() {
            let verdict = scorer.score_record(season.row(i)).map_err(pipe)?;
            if let Some(drift) = &verdict.drift {
                checks.push((
                    verdict.index,
                    drift.any_drift(),
                    drift.drifted_dims.clone(),
                    label,
                ));
            }
            ndjson.push_str(&verdict_json(&verdict, scorer).map_err(pipe)?.render());
            ndjson.push('\n');
        }
        Ok(())
    };
    score_season(&mut scorer, &season_a, "A", &mut ndjson)?;
    // The operator knows the season turned: re-base the drift statistics
    // so season B is judged on its own evidence, not blended with A's.
    scorer.reset_drift();
    score_season(&mut scorer, &season_b, "B", &mut ndjson)?;

    let a_checks: Vec<_> = checks.iter().filter(|(_, _, _, s)| *s == "A").collect();
    let b_checks: Vec<_> = checks.iter().filter(|(_, _, _, s)| *s == "B").collect();
    let silent_in_a = a_checks.iter().all(|(_, drifted, _, _)| !drifted);
    let fires_in_b = b_checks
        .iter()
        .any(|(_, drifted, dims, _)| *drifted && SHIFTED_DIMS.iter().any(|d| dims.contains(d)));

    // Referee: CFOF over the combined window. Season B is half the data —
    // a *population*, not outliers — so its per-point ranks stay ordinary.
    let mut combined = season_a.clone();
    combined.append(&season_b).map_err(pipe)?;
    let cfof =
        cfof_scores_threaded(&combined, 0.05, Metric::Euclidean, config.threads).map_err(pipe)?;
    let mean = |range: std::ops::Range<usize>| {
        cfof[range.clone()].iter().sum::<f64>() / range.len() as f64
    };
    let cfof_a = mean(0..SEASON_ROWS);
    let cfof_b = mean(SEASON_ROWS..2 * SEASON_ROWS);
    let cfof_ratio = cfof_b / cfof_a;

    let invariants = vec![
        Invariant::check(
            "silent-through-season-a",
            silent_in_a,
            format!("{} checks in season A, none drifted", a_checks.len()),
        ),
        Invariant::check(
            "fires-in-season-b",
            fires_in_b,
            format!(
                "{} checks in season B; alarm names a shifted dimension from {SHIFTED_DIMS:?}",
                b_checks.len()
            ),
        ),
        Invariant::check(
            "cfof-sees-no-point-outliers",
            cfof_ratio < 1.5,
            format!(
                "mean CFOF season B {cfof_b:.3} vs A {cfof_a:.3} (ratio {cfof_ratio:.2}, ceiling 1.5): a shifted population is not a set of outliers"
            ),
        ),
    ];

    let checks_json: Vec<Json> = checks
        .iter()
        .map(|(record, drifted, dims, season)| {
            Json::object()
                .field("record", *record)
                .field("season", *season)
                .field("drifted", *drifted)
                .field(
                    "drifted_dims",
                    Json::Array(dims.iter().map(|&d| Json::from(d)).collect()),
                )
                .unwrap()
        })
        .collect();
    let pipelines = Json::object()
        .field(
            "stream",
            Json::object()
                .field("records", 2 * SEASON_ROWS)
                .field("reset_after", SEASON_ROWS)
                .field("verdict_fingerprint", fingerprint_text(&ndjson))
                .field("drift_checks", Json::Array(checks_json))
                .unwrap(),
        )
        .unwrap();
    let referees = Json::Array(vec![Json::object()
        .field("method", "cfof")
        .field("rho", 0.05)
        .field("mean_season_a", cfof_a)
        .field("mean_season_b", cfof_b)
        .field("ratio", cfof_ratio)
        .unwrap()]);

    let report = envelope(
        "seasonal-shift",
        SEED,
        start.elapsed().as_secs_f64() * 1000.0,
        dataset_json(&combined, &[]),
        pipelines,
        referees,
        &invariants,
    );
    Ok(Outcome { report, invariants })
}
