//! **adversarial-near-duplicates** — the hardest case for the distance
//! family: each planted outlier is a **copy of a real inlier** with only
//! one strongly-correlated pair of dimensions rewritten to a contrarian
//! combination (one side pushed up, the other down — each value ordinary
//! on its own). Full-space distances barely move, so kNN, LOF, and even
//! the rank-based CFOF referee score the plants as unremarkable; the
//! sparsity coefficient sees the near-empty joint cell immediately. This
//! is the paper's §1 argument as an executable artifact.

use crate::report::{dataset_json, detect_json, envelope, metrics_json, recall, top_rows};
use crate::synth::{factor_row, standard_normal};
use crate::{pipe, Invariant, Outcome, RunConfig, Scenario, ScenarioError};
use hdoutlier_baselines::{
    cfof_scores_threaded, lof_scores_threaded, ramaswamy_top_n_threaded, Metric,
};
use hdoutlier_core::{OutlierDetector, SearchMethod};
use hdoutlier_data::Dataset;
use hdoutlier_json::{FieldChain, Json};
use hdoutlier_rng::rngs::StdRng;
use hdoutlier_rng::{Rng, SeedableRng};
use std::time::Instant;

const SEED: u64 = 0xADD5;
const N_INLIERS: usize = 500;
const N_DIMS: usize = 8;
const GROUP_SIZE: usize = 2;
/// Groups 0 and 1 are strongly correlated; the plants rewrite a pair there.
const STRONG_GROUPS: usize = 2;
const N_OUTLIERS: usize = 4;
/// The contrarian magnitude: ~84th percentile per side — each value is
/// ordinary marginally; only the joint combination is contrarian.
const Z: f64 = 1.0;

/// The pack descriptor.
pub fn scenario() -> Scenario {
    Scenario {
        name: "adversarial-near-duplicates",
        summary: "outliers are near-copies of inliers, contrarian only in one correlated pair; kNN/LOF/CFOF are fooled, subspace search is not",
        seed: SEED,
        run,
    }
}

fn synthesize() -> (Dataset, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let strength = |g: usize| if g < STRONG_GROUPS { 0.95 } else { 0.3 };
    let mut rows: Vec<Vec<f64>> = (0..N_INLIERS)
        .map(|_| factor_row(&mut rng, N_DIMS, GROUP_SIZE, strength))
        .collect();
    // Each plant clones a spread-out inlier, then rewrites one strong
    // group's pair to (−Z, +Z): a combination the 0.95 correlation makes
    // ~6 conditional σ unlikely, while every other coordinate stays a
    // byte-exact duplicate of a genuine record.
    let mut planted = Vec::with_capacity(N_OUTLIERS);
    for i in 0..N_OUTLIERS {
        let source = rng.gen_range(0..N_INLIERS);
        let mut row = rows[source].clone();
        let group = i % STRONG_GROUPS;
        let base = group * GROUP_SIZE;
        row[base] = -Z + 0.02 * standard_normal(&mut rng);
        row[base + 1] = Z + 0.02 * standard_normal(&mut rng);
        planted.push(rows.len());
        rows.push(row);
    }
    (Dataset::from_rows(rows).expect("shape"), planted)
}

fn run(config: &RunConfig) -> Result<Outcome, ScenarioError> {
    let start = Instant::now();
    let (ds, truth) = synthesize();

    let detection = OutlierDetector::builder()
        .phi(5)
        .k(2)
        .m(8)
        .search(SearchMethod::BruteForce)
        .threads(config.threads)
        .build()
        .detect(&ds)
        .map_err(pipe)?;
    let subspace_recall = recall(&truth, &detection.outlier_rows);

    let knn = ramaswamy_top_n_threaded(&ds, 4, truth.len(), Metric::Euclidean, config.threads)
        .map_err(pipe)?;
    let knn_rows: Vec<usize> = knn.iter().map(|o| o.row).collect();
    let lof = lof_scores_threaded(&ds, 10, Metric::Euclidean, config.threads).map_err(pipe)?;
    let lof_rows = top_rows(&lof, truth.len());
    let cfof = cfof_scores_threaded(&ds, 0.05, Metric::Euclidean, config.threads).map_err(pipe)?;
    let cfof_rows = top_rows(&cfof, truth.len());

    let knn_recall = recall(&truth, &knn_rows);
    let lof_recall = recall(&truth, &lof_rows);
    let cfof_recall = recall(&truth, &cfof_rows);

    let invariants = vec![
        Invariant::check(
            "subspace-recovers-the-plants",
            subspace_recall >= 0.75,
            format!("brute-force recall {subspace_recall:.2} (floor 0.75) over {} plants", truth.len()),
        ),
        Invariant::check(
            "knn-is-fooled",
            knn_recall <= 0.5,
            format!("kNN top-{} recall {knn_recall:.2} (ceiling 0.50): near-duplicates keep full-space distances ordinary", truth.len()),
        ),
        Invariant::check(
            "lof-is-fooled",
            lof_recall <= 0.5,
            format!("LOF top-{} recall {lof_recall:.2} (ceiling 0.50)", truth.len()),
        ),
        Invariant::check(
            "cfof-referee-is-fooled",
            cfof_recall <= 0.5,
            format!("CFOF top-{} recall {cfof_recall:.2} (ceiling 0.50): rank statistics inherit the same full-space blindness", truth.len()),
        ),
    ];

    let pipelines = Json::object()
        .field("detect_brute", detect_json(&detection))
        .field("baseline_knn", metrics_json(&truth, &knn_rows))
        .field("baseline_lof", metrics_json(&truth, &lof_rows))
        .unwrap();
    let referees = Json::Array(vec![Json::object()
        .field("method", "cfof")
        .field("rho", 0.05)
        .field("verdict", metrics_json(&truth, &cfof_rows))
        .unwrap()]);

    let report = envelope(
        "adversarial-near-duplicates",
        SEED,
        start.elapsed().as_secs_f64() * 1000.0,
        dataset_json(&ds, &truth),
        pipelines,
        referees,
        &invariants,
    );
    Ok(Outcome { report, invariants })
}
