//! **sensor-drift** — a fleet sensor feed whose calibration drifts
//! mid-stream: the first half of the window matches the training
//! distribution, then two channels shift by +2σ. Exercises the streaming
//! scorer end to end: drift alarms must stay silent before the drift and
//! fire on the shifted channels after it, and a checkpoint/kill/resume
//! mid-stream must reproduce the uninterrupted verdict stream byte for
//! byte. DOD referees the shifted window from the distance-profile side
//! (a systemic shift is exactly what it sees best).

use crate::report::{dataset_json, envelope, fingerprint_text};
use crate::synth::factor_row;
use crate::{pipe, Invariant, Outcome, RunConfig, Scenario, ScenarioError};
use hdoutlier_baselines::{dod_scores_threaded, Metric};
use hdoutlier_core::{OutlierDetector, SearchMethod};
use hdoutlier_data::Dataset;
use hdoutlier_json::{FieldChain, Json};
use hdoutlier_rng::rngs::StdRng;
use hdoutlier_rng::SeedableRng;
use hdoutlier_stream::ndjson::verdict_json;
use hdoutlier_stream::{Checkpoint, OnlineScorer};
use std::time::Instant;

const SEED: u64 = 0x5E50;
const N_DIMS: usize = 6;
const TRAIN_ROWS: usize = 500;
const STREAM_ROWS: usize = 400;
/// First stream record index whose channels are shifted.
const DRIFT_AT: usize = 200;
/// The channels that drift, by +SHIFT each.
const DRIFTED_DIMS: [usize; 2] = [0, 1];
const SHIFT: f64 = 2.0;
const CHECK_EVERY: u64 = 100;
/// Stream record index where the process is killed and resumed.
const KILL_AT: usize = 150;

/// The pack descriptor.
pub fn scenario() -> Scenario {
    Scenario {
        name: "sensor-drift",
        summary: "mid-stream +2σ calibration drift; alarms fire only after it, checkpoint/kill/resume is byte-identical, DOD referees",
        seed: SEED,
        run,
    }
}

fn synthesize() -> (Dataset, Dataset) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let strength = |_g: usize| 0.85;
    let train: Vec<Vec<f64>> = (0..TRAIN_ROWS)
        .map(|_| factor_row(&mut rng, N_DIMS, 2, strength))
        .collect();
    let stream: Vec<Vec<f64>> = (0..STREAM_ROWS)
        .map(|i| {
            let mut row = factor_row(&mut rng, N_DIMS, 2, strength);
            if i >= DRIFT_AT {
                for &d in &DRIFTED_DIMS {
                    row[d] += SHIFT;
                }
            }
            row
        })
        .collect();
    (
        Dataset::from_rows(train).expect("train shape"),
        Dataset::from_rows(stream).expect("stream shape"),
    )
}

fn new_scorer(model: &hdoutlier_core::FittedModel) -> Result<OnlineScorer, ScenarioError> {
    let mut scorer = OnlineScorer::new(model.clone()).map_err(pipe)?;
    scorer.set_check_every(CHECK_EVERY).map_err(pipe)?;
    scorer
        .set_drift_alpha(OnlineScorer::DEFAULT_ALPHA)
        .map_err(pipe)?;
    Ok(scorer)
}

/// Scores `range` of the stream, appending NDJSON verdict lines and
/// recording drift checks as `(record, drifted, drifted_dims)`.
fn score_range(
    scorer: &mut OnlineScorer,
    stream: &Dataset,
    range: std::ops::Range<usize>,
    ndjson: &mut String,
    checks: &mut Vec<(u64, bool, Vec<usize>)>,
) -> Result<u64, ScenarioError> {
    let mut outliers = 0u64;
    for i in range {
        let verdict = scorer.score_record(stream.row(i)).map_err(pipe)?;
        if verdict.outlier {
            outliers += 1;
        }
        if let Some(drift) = &verdict.drift {
            checks.push((verdict.index, drift.any_drift(), drift.drifted_dims.clone()));
        }
        ndjson.push_str(&verdict_json(&verdict, scorer).map_err(pipe)?.render());
        ndjson.push('\n');
    }
    Ok(outliers)
}

fn run(config: &RunConfig) -> Result<Outcome, ScenarioError> {
    let start = Instant::now();
    let (train, stream) = synthesize();
    let model = OutlierDetector::builder()
        .phi(4)
        .k(2)
        .m(5)
        .search(SearchMethod::BruteForce)
        .threads(config.threads)
        .build()
        .fit(&train)
        .map_err(pipe)?;

    // Reference: one uninterrupted scorer over the whole window.
    let mut reference = String::new();
    let mut checks: Vec<(u64, bool, Vec<usize>)> = Vec::new();
    let mut scorer = new_scorer(&model)?;
    let outliers = score_range(
        &mut scorer,
        &stream,
        0..STREAM_ROWS,
        &mut reference,
        &mut checks,
    )?;

    // Kill/resume: score to KILL_AT, checkpoint, "crash", restore into a
    // fresh scorer, finish. The concatenated stream must be byte-identical
    // to the reference — same verdicts, same drift state, same indices.
    let mut resumed = String::new();
    let mut resumed_checks = Vec::new();
    let mut first = new_scorer(&model)?;
    score_range(
        &mut first,
        &stream,
        0..KILL_AT,
        &mut resumed,
        &mut resumed_checks,
    )?;
    let ckpt_dir = std::env::temp_dir()
        .join("hdoutlier-scenario")
        .join("sensor-drift");
    std::fs::create_dir_all(&ckpt_dir).map_err(pipe)?;
    let ckpt_path = ckpt_dir.join("scorer.ckpt.json");
    Checkpoint::capture(&first, 0, 0)
        .save_atomic(&ckpt_path)
        .map_err(pipe)?;
    drop(first); // the "kill"
    let (loaded, _recovered_from) = Checkpoint::load_with_recovery(&ckpt_path).map_err(pipe)?;
    let mut second = new_scorer(&model)?;
    loaded.restore(&mut second).map_err(pipe)?;
    score_range(
        &mut second,
        &stream,
        KILL_AT..STREAM_ROWS,
        &mut resumed,
        &mut resumed_checks,
    )?;
    let resume_identical = resumed == reference;

    // Referee: DOD over train + stream together, so the drifted rows are a
    // minority (200 of 900) against the healthy consensus profile. Inside
    // the stream window alone they are half the data — their own
    // population — and no profile-deviation score can see them.
    let mut window = train.clone();
    window.append(&stream).map_err(pipe)?;
    let dod = dod_scores_threaded(&window, Metric::Euclidean, config.threads).map_err(pipe)?;
    let mean =
        |range: std::ops::Range<usize>| dod[range.clone()].iter().sum::<f64>() / range.len() as f64;
    let dod_pre = mean(0..TRAIN_ROWS + DRIFT_AT);
    let dod_post = mean(TRAIN_ROWS + DRIFT_AT..TRAIN_ROWS + STREAM_ROWS);
    let dod_ratio = dod_post / dod_pre;

    let pre_checks: Vec<_> = checks
        .iter()
        .filter(|(r, _, _)| (*r as usize) < DRIFT_AT)
        .collect();
    let post_checks: Vec<_> = checks
        .iter()
        .filter(|(r, _, _)| (*r as usize) >= DRIFT_AT)
        .collect();
    let silent_before = pre_checks.iter().all(|(_, drifted, _)| !drifted);
    let fires_after = post_checks
        .iter()
        .any(|(_, drifted, dims)| *drifted && DRIFTED_DIMS.iter().any(|d| dims.contains(d)));

    let invariants = vec![
        Invariant::check(
            "drift-silent-before-shift",
            silent_before,
            format!("{} checks before record {DRIFT_AT}, none drifted", pre_checks.len()),
        ),
        Invariant::check(
            "drift-fires-on-shifted-channels",
            fires_after,
            format!(
                "{} checks after record {DRIFT_AT}; alarm names a shifted channel from {DRIFTED_DIMS:?}",
                post_checks.len()
            ),
        ),
        Invariant::check(
            "resume-is-byte-identical",
            resume_identical,
            format!(
                "kill at record {KILL_AT}: resumed stream {} reference ({} bytes)",
                if resume_identical { "matches" } else { "DIFFERS FROM" },
                reference.len()
            ),
        ),
        Invariant::check(
            "dod-referee-sees-the-shift",
            dod_ratio >= 1.2,
            format!("mean DOD {dod_post:.3} after vs {dod_pre:.3} before (ratio {dod_ratio:.2}, floor 1.2)"),
        ),
    ];

    let checks_json: Vec<Json> = checks
        .iter()
        .map(|(record, drifted, dims)| {
            Json::object()
                .field("record", *record)
                .field("drifted", *drifted)
                .field(
                    "drifted_dims",
                    Json::Array(dims.iter().map(|&d| Json::from(d)).collect()),
                )
                .unwrap()
        })
        .collect();
    let pipelines = Json::object()
        .field(
            "stream",
            Json::object()
                .field("records", STREAM_ROWS)
                .field("outliers", outliers)
                .field("verdict_fingerprint", fingerprint_text(&reference))
                .field("drift_checks", Json::Array(checks_json))
                .unwrap(),
        )
        .field(
            "resume",
            Json::object()
                .field("kill_at", KILL_AT)
                .field("byte_identical", resume_identical)
                .unwrap(),
        )
        .unwrap();
    let referees = Json::Array(vec![Json::object()
        .field("method", "dod")
        .field("mean_before_shift", dod_pre)
        .field("mean_after_shift", dod_post)
        .field("ratio", dod_ratio)
        .unwrap()]);

    // Ground truth here is the drift window, not planted rows.
    let report = envelope(
        "sensor-drift",
        SEED,
        start.elapsed().as_secs_f64() * 1000.0,
        dataset_json(&stream, &[]),
        pipelines,
        referees,
        &invariants,
    );
    Ok(Outcome { report, invariants })
}
