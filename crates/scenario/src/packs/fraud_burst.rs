//! **fraud-burst** — a burst of planted fraudulent transactions:
//! marginally unremarkable rows that are jointly contrarian inside a
//! correlated feature group (amount vs. account-history style). The
//! paper's home turf: both searches must recover them, the kNN baseline
//! is expected to do no better, and CFOF referees the distance family's
//! best rank-based effort.

use crate::report::{dataset_json, detect_json, envelope, metrics_json, recall, top_rows};
use crate::{pipe, Invariant, Outcome, RunConfig, Scenario, ScenarioError};
use hdoutlier_baselines::{cfof_scores_threaded, ramaswamy_top_n_threaded, Metric};
use hdoutlier_core::{OutlierDetector, SearchMethod};
use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_json::{FieldChain, Json};
use std::time::Instant;

const SEED: u64 = 0xF4A0D;

/// The pack descriptor.
pub fn scenario() -> Scenario {
    Scenario {
        name: "fraud-burst",
        summary: "planted contrarian transactions; brute + evolutionary recover them, kNN does not beat them, CFOF referees",
        seed: SEED,
        run,
    }
}

fn run(config: &RunConfig) -> Result<Outcome, ScenarioError> {
    let start = Instant::now();
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 600,
        n_dims: 10,
        n_outliers: 5,
        strong_groups: Some(3),
        seed: SEED,
        ..PlantedConfig::default()
    });
    let ds = &planted.dataset;
    let truth = &planted.outlier_rows;

    let brute = OutlierDetector::builder()
        .phi(5)
        .k(2)
        .m(10)
        .search(SearchMethod::BruteForce)
        .threads(config.threads)
        .build()
        .detect(ds)
        .map_err(pipe)?;
    let evolutionary = OutlierDetector::builder()
        .phi(5)
        .k(2)
        .m(10)
        .search(SearchMethod::Evolutionary)
        .population(40)
        .max_generations(60)
        .seed(SEED)
        .threads(config.threads)
        .build()
        .detect(ds)
        .map_err(pipe)?;

    let knn = ramaswamy_top_n_threaded(ds, 5, truth.len(), Metric::Euclidean, config.threads)
        .map_err(pipe)?;
    let knn_rows: Vec<usize> = knn.iter().map(|o| o.row).collect();
    let cfof = cfof_scores_threaded(ds, 0.05, Metric::Euclidean, config.threads).map_err(pipe)?;
    let cfof_rows = top_rows(&cfof, truth.len());

    let brute_recall = recall(truth, &brute.outlier_rows);
    let evo_recall = recall(truth, &evolutionary.outlier_rows);
    let knn_recall = recall(truth, &knn_rows);
    let cfof_recall = recall(truth, &cfof_rows);

    let invariants = vec![
        Invariant::check(
            "brute-recovers-planted",
            brute_recall >= 0.8,
            format!("brute-force recall {brute_recall:.2} (floor 0.80) over {} planted rows", truth.len()),
        ),
        Invariant::check(
            "evolutionary-recovers-planted",
            evo_recall >= 0.6,
            format!("evolutionary recall {evo_recall:.2} (floor 0.60)"),
        ),
        Invariant::check(
            "knn-does-not-beat-subspace",
            knn_recall <= brute_recall,
            format!("kNN top-{} recall {knn_recall:.2} vs subspace {brute_recall:.2} — the paper's §3.1 ordering", truth.len()),
        ),
        Invariant::check(
            "cfof-referee-does-not-beat-subspace",
            cfof_recall <= brute_recall,
            format!("CFOF top-{} recall {cfof_recall:.2} vs subspace {brute_recall:.2}", truth.len()),
        ),
    ];

    let pipelines = Json::object()
        .field("detect_brute", detect_json(&brute))
        .field("detect_evolutionary", detect_json(&evolutionary))
        .field("baseline_knn", metrics_json(truth, &knn_rows))
        .unwrap();
    let referees = Json::Array(vec![Json::object()
        .field("method", "cfof")
        .field("rho", 0.05)
        .field("verdict", metrics_json(truth, &cfof_rows))
        .unwrap()]);

    let report = envelope(
        "fraud-burst",
        SEED,
        start.elapsed().as_secs_f64() * 1000.0,
        dataset_json(ds, truth),
        pipelines,
        referees,
        &invariants,
    );
    Ok(Outcome { report, invariants })
}
