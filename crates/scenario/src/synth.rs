//! Seeded synthesis helpers the custom packs share: Box–Muller normals and
//! correlated factor-group rows, matching the construction in
//! `hdoutlier_data::generators` (whose own sampler is crate-private).

use hdoutlier_rng::Rng;

/// Standard normal via Box–Muller — the same transform the data crate's
/// generators use, so scenario datasets share their marginals.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// One row of the correlated factor-group model: dimensions are covered by
/// consecutive groups of `group_size`, each sharing a latent factor with
/// loading `strength(group)`; marginals stay N(0, 1).
pub fn factor_row<R: Rng>(
    rng: &mut R,
    n_dims: usize,
    group_size: usize,
    strength: impl Fn(usize) -> f64,
) -> Vec<f64> {
    let n_groups = n_dims.div_ceil(group_size);
    let factors: Vec<f64> = (0..n_groups).map(|_| standard_normal(rng)).collect();
    (0..n_dims)
        .map(|j| {
            let g = j / group_size;
            let s = strength(g);
            let eps = standard_normal(rng);
            s * factors[g] + (1.0 - s * s).sqrt() * eps
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_rng::rngs::StdRng;
    use hdoutlier_rng::SeedableRng;

    #[test]
    fn normals_have_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn strong_groups_correlate_and_weak_groups_do_not() {
        let mut rng = StdRng::seed_from_u64(11);
        let rows: Vec<Vec<f64>> = (0..4000)
            .map(|_| factor_row(&mut rng, 4, 2, |g| if g == 0 { 0.9 } else { 0.0 }))
            .collect();
        let corr = |a: usize, b: usize| {
            let n = rows.len() as f64;
            let ma = rows.iter().map(|r| r[a]).sum::<f64>() / n;
            let mb = rows.iter().map(|r| r[b]).sum::<f64>() / n;
            let cov: f64 = rows.iter().map(|r| (r[a] - ma) * (r[b] - mb)).sum::<f64>() / n;
            let va: f64 = rows.iter().map(|r| (r[a] - ma).powi(2)).sum::<f64>() / n;
            let vb: f64 = rows.iter().map(|r| (r[b] - mb).powi(2)).sum::<f64>() / n;
            cov / (va.sqrt() * vb.sqrt())
        };
        assert!(corr(0, 1) > 0.7, "strong pair {}", corr(0, 1));
        assert!(corr(2, 3).abs() < 0.1, "weak pair {}", corr(2, 3));
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            factor_row(&mut rng, 6, 3, |_| 0.8)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
