//! A minimal unified diff for golden mismatches: enough `@@`-hunk output
//! for a human to see exactly which verdict, score, or ranking moved,
//! without an external diff tool in CI.

/// One line-level edit.
enum Op<'a> {
    Equal(&'a str),
    Delete(&'a str),
    Insert(&'a str),
}

/// Renders a unified diff (`---`/`+++` headers, `@@` hunks, `context`
/// lines of surrounding equality) between `expected` and `actual`.
/// Returns an empty string when the texts are identical.
pub fn unified(
    expected_label: &str,
    expected: &str,
    actual_label: &str,
    actual: &str,
    context: usize,
) -> String {
    if expected == actual {
        return String::new();
    }
    let a: Vec<&str> = expected.lines().collect();
    let b: Vec<&str> = actual.lines().collect();
    let ops = edit_script(&a, &b);

    let mut out = format!("--- {expected_label}\n+++ {actual_label}\n");
    // Walk the script, grouping changed runs (plus context) into hunks.
    let mut i = 0usize;
    while i < ops.len() {
        if matches!(ops[i], Op::Equal(_)) {
            i += 1;
            continue;
        }
        // A change at `i`: the hunk spans from `context` lines before it to
        // `context` equal lines after the last change reachable without a
        // gap of more than `2 * context` equal lines.
        let start = i.saturating_sub(context);
        let mut end = i;
        let mut last_change = i;
        while end < ops.len() {
            if !matches!(ops[end], Op::Equal(_)) {
                last_change = end;
            } else if end - last_change > 2 * context {
                break;
            }
            end += 1;
        }
        let end = (last_change + context + 1).min(ops.len());

        // Hunk header needs the 1-based start lines and counts per side.
        let (mut a_line, mut b_line) = (1usize, 1usize);
        for op in &ops[..start] {
            match op {
                Op::Equal(_) => {
                    a_line += 1;
                    b_line += 1;
                }
                Op::Delete(_) => a_line += 1,
                Op::Insert(_) => b_line += 1,
            }
        }
        let a_count = ops[start..end]
            .iter()
            .filter(|o| matches!(o, Op::Equal(_) | Op::Delete(_)))
            .count();
        let b_count = ops[start..end]
            .iter()
            .filter(|o| matches!(o, Op::Equal(_) | Op::Insert(_)))
            .count();
        out.push_str(&format!("@@ -{a_line},{a_count} +{b_line},{b_count} @@\n"));
        for op in &ops[start..end] {
            match op {
                Op::Equal(line) => {
                    out.push(' ');
                    out.push_str(line);
                }
                Op::Delete(line) => {
                    out.push('-');
                    out.push_str(line);
                }
                Op::Insert(line) => {
                    out.push('+');
                    out.push_str(line);
                }
            }
            out.push('\n');
        }
        i = end;
    }
    out
}

/// Longest-common-subsequence edit script via the classic O(n·m) DP.
/// Goldens are a few hundred lines, so the quadratic table is cheap; both
/// inputs are capped defensively so a pathological artifact cannot blow
/// memory.
fn edit_script<'a>(a: &[&'a str], b: &[&'a str]) -> Vec<Op<'a>> {
    const CAP: usize = 20_000;
    if a.len() > CAP || b.len() > CAP {
        // Fallback: whole-file replacement — still a valid diff.
        let mut ops: Vec<Op<'a>> = a.iter().map(|&l| Op::Delete(l)).collect();
        ops.extend(b.iter().map(|&l| Op::Insert(l)));
        return ops;
    }
    let (n, m) = (a.len(), b.len());
    // lcs[i][j] = LCS length of a[i..] and b[j..], flattened.
    let width = m + 1;
    let mut lcs = vec![0u32; (n + 1) * width];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i * width + j] = if a[i] == b[j] {
                lcs[(i + 1) * width + j + 1] + 1
            } else {
                lcs[(i + 1) * width + j].max(lcs[i * width + j + 1])
            };
        }
    }
    let mut ops = Vec::with_capacity(n.max(m));
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if a[i] == b[j] {
            ops.push(Op::Equal(a[i]));
            i += 1;
            j += 1;
        } else if lcs[(i + 1) * width + j] >= lcs[i * width + j + 1] {
            ops.push(Op::Delete(a[i]));
            i += 1;
        } else {
            ops.push(Op::Insert(b[j]));
            j += 1;
        }
    }
    ops.extend(a[i..].iter().map(|&l| Op::Delete(l)));
    ops.extend(b[j..].iter().map(|&l| Op::Insert(l)));
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_diff_empty() {
        assert_eq!(unified("a", "x\ny\n", "b", "x\ny\n", 3), "");
    }

    #[test]
    fn single_changed_line_yields_one_hunk() {
        let expected = "one\ntwo\nthree\nfour\nfive\n";
        let actual = "one\ntwo\nTHREE\nfour\nfive\n";
        let d = unified("golden", expected, "run", actual, 1);
        assert!(d.starts_with("--- golden\n+++ run\n"), "{d}");
        assert!(d.contains("@@ -2,3 +2,3 @@"), "{d}");
        assert!(d.contains("-three\n"), "{d}");
        assert!(d.contains("+THREE\n"), "{d}");
        // Lines outside the context window never appear.
        assert!(!d.contains("five"), "{d}");
    }

    #[test]
    fn distant_changes_get_separate_hunks() {
        let expected: String = (0..40).map(|i| format!("line{i}\n")).collect();
        let actual = expected
            .replace("line3\n", "LINE3\n")
            .replace("line30\n", "LINE30\n");
        let d = unified("golden", &expected, "run", &actual, 2);
        assert_eq!(d.matches("@@ -").count(), 2, "{d}");
    }

    #[test]
    fn pure_insertion_and_deletion() {
        let d = unified("golden", "a\nb\n", "run", "a\nx\nb\n", 1);
        assert!(d.contains("+x\n"), "{d}");
        let d2 = unified("golden", "a\nx\nb\n", "run", "a\nb\n", 1);
        assert!(d2.contains("-x\n"), "{d2}");
    }
}
