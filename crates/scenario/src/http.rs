//! A deliberately tiny HTTP/1.1 client for driving `serve` over real
//! loopback TCP from inside a scenario pack: one close-delimited request
//! per connection, exactly like the CLI e2e harness, so the pack exercises
//! the genuine network path rather than calling `ServeApp::handle`
//! directly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends one request and returns `(status, body)`. `request_id`, when
/// given, is sent as `X-Request-Id` (the key the serve replay cache uses).
///
/// # Errors
/// Propagates connect/read/write errors; a malformed response surfaces as
/// [`std::io::ErrorKind::InvalidData`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    request_id: Option<&str>,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let id_header = request_id.map_or(String::new(), |id| format!("X-Request-Id: {id}\r\n"));
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: scenario\r\nConnection: close\r\n\
             {id_header}Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &str) -> std::io::Result<(u16, String)> {
    let invalid = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| invalid("response has no header/body separator"))?;
    let status_line = head.lines().next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("response status line is malformed"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let raw = "HTTP/1.1 201 Created\r\nContent-Length: 4\r\n\r\nbody";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 201);
        assert_eq!(body, "body");
    }

    #[test]
    fn malformed_responses_error_instead_of_panicking() {
        assert!(parse_response("garbage").is_err());
        assert!(parse_response("HTTP/1.1 nope\r\n\r\n").is_err());
    }
}
