#![warn(missing_docs)]

//! Generic evolutionary-search substrate (paper §2.1).
//!
//! The outlier detector's genetic algorithm is built on this crate's
//! problem-agnostic pieces:
//!
//! - [`selection`]: rank-roulette (the paper's Fig. 4 scheme, weight
//!   `p − r(i)`), plus fitness-proportional and tournament selection for the
//!   selection-scheme ablation.
//! - [`convergence`]: De Jong's criterion — a gene has converged when 95 %
//!   of the population agrees on its value; the population has converged
//!   when every gene has (§2.1, the paper's termination condition).
//! - [`engine`]: the generation loop of Fig. 3 — selection → crossover →
//!   mutation — over any [`engine::EvolutionaryProblem`], with an observer
//!   hook so callers can maintain their own best-set, and deterministic
//!   behavior under a seeded RNG.
//!
//! Fitness is always **minimized** here, matching the paper's "most negative
//! sparsity coefficient first" ordering.

pub mod convergence;
pub mod engine;
pub mod selection;

pub use convergence::{gene_convergence, population_converged};
pub use engine::{
    two_point_crossover, Engine, EngineConfig, EvolutionaryProblem, RunStats, Termination,
};
pub use selection::SelectionScheme;
