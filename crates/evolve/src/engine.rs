//! The generation loop of paper Fig. 3.
//!
//! ```text
//! S = initial seed population of p strings
//! while not(termination_criterion):
//!     S = Selection(S)
//!     S = CrossOver(S)
//!     S = Mutation(S, p1, p2)
//!     update BestSet
//! ```
//!
//! The engine is generic over an [`EvolutionaryProblem`]; the caller supplies
//! an observer that sees every `(genome, fitness)` evaluation, which is how
//! the outlier detector maintains its deduplicated best-m set without the
//! engine knowing anything about projections.

use crate::convergence::{gene_convergence, population_converged};
use crate::selection::SelectionScheme;
use hdoutlier_obs as obs;
use hdoutlier_rng::rngs::StdRng;
use hdoutlier_rng::{Rng, SeedableRng};
use std::time::Instant;

/// Event target for everything the engine emits.
const TARGET: &str = "hdoutlier.evolve";

/// Metric handles resolved once per run (resolution takes the registry
/// lock; updates are lock-free).
struct EngineMetrics {
    generations: obs::Counter,
    evaluations: obs::Counter,
    selection_us: obs::Histogram,
    crossover_us: obs::Histogram,
    mutation_us: obs::Histogram,
    evaluate_us: obs::Histogram,
    generation_us: obs::Histogram,
}

impl EngineMetrics {
    fn resolve() -> Self {
        let r = obs::registry();
        EngineMetrics {
            generations: r.counter("hdoutlier.evolve.generations"),
            evaluations: r.counter("hdoutlier.evolve.evaluations"),
            selection_us: r.histogram("hdoutlier.evolve.selection_us"),
            crossover_us: r.histogram("hdoutlier.evolve.crossover_us"),
            mutation_us: r.histogram("hdoutlier.evolve.mutation_us"),
            evaluate_us: r.histogram("hdoutlier.evolve.evaluate_us"),
            generation_us: r.histogram("hdoutlier.evolve.generation_us"),
        }
    }
}

/// Elapsed microseconds of `f`, recording into `hist` and returning the
/// elapsed count alongside the result. When `timed` is false no clock is
/// read and the reported elapsed is 0.
fn timed_stage<T>(timed: bool, hist: &obs::Histogram, f: impl FnOnce() -> T) -> (T, u64) {
    if timed {
        let start = Instant::now();
        let out = f();
        let us = start.elapsed().as_micros() as u64;
        hist.record(us as f64);
        (out, us)
    } else {
        (f(), 0)
    }
}

/// A problem the engine can evolve. Fitness is minimized.
pub trait EvolutionaryProblem {
    /// The genome representation.
    type Genome: Clone;

    /// Samples a random feasible genome for the seed population.
    fn random_genome(&self, rng: &mut StdRng) -> Self::Genome;

    /// The objective value (smaller is better).
    fn fitness(&self, genome: &Self::Genome) -> f64;

    /// Recombines two parents into two children.
    fn crossover(
        &self,
        a: &Self::Genome,
        b: &Self::Genome,
        rng: &mut StdRng,
    ) -> (Self::Genome, Self::Genome);

    /// Mutates a genome in place.
    fn mutate(&self, genome: &mut Self::Genome, rng: &mut StdRng);

    /// Discrete gene view for De Jong's convergence criterion.
    fn gene_view(&self, genome: &Self::Genome) -> Vec<u32>;
}

/// Engine knobs. The defaults mirror the paper's setup: rank-roulette
/// selection and De Jong convergence at 95 %.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Population size `p`.
    pub population: usize,
    /// Selection scheme.
    pub selection: SelectionScheme,
    /// De Jong gene-convergence threshold.
    pub convergence_threshold: f64,
    /// Hard cap on generations (safety net — convergence is the intended
    /// termination, but pathological operators could cycle forever).
    pub max_generations: usize,
    /// Stop after this many consecutive generations without improving the
    /// best fitness seen. `None` disables the stall check.
    pub stall_generations: Option<usize>,
    /// Elitism: carry the `elitism` fittest genomes of each generation into
    /// the next unchanged, replacing its worst children. The paper relies on
    /// its external BestSet instead of elitism (0 here reproduces that);
    /// nonzero values are a standard refinement that guarantees the
    /// population's best fitness is monotone.
    pub elitism: usize,
    /// RNG seed; every run with the same seed and problem is identical.
    pub seed: u64,
    /// Worker threads for fitness evaluation. Fitness is the only stage that
    /// fans out: it consumes no RNG, so the fitness vector is byte-identical
    /// at any thread count, while selection, crossover, and mutation stay on
    /// the single seeded stream. `1` evaluates inline with no pool.
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            population: 100,
            selection: SelectionScheme::RankRoulette,
            convergence_threshold: 0.95,
            max_generations: 1000,
            stall_generations: None,
            elitism: 0,
            seed: 0,
            threads: 1,
        }
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// De Jong convergence: ≥ threshold agreement on every gene.
    Converged,
    /// Hit the `max_generations` cap.
    MaxGenerations,
    /// No improvement for `stall_generations` generations.
    Stalled,
}

impl Termination {
    /// Short lower-case name, as emitted in run-summary events.
    pub fn as_str(self) -> &'static str {
        match self {
            Termination::Converged => "converged",
            Termination::MaxGenerations => "max_generations",
            Termination::Stalled => "stalled",
        }
    }
}

/// Summary of one run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Generations executed (selection+crossover+mutation cycles).
    pub generations_run: usize,
    /// Total fitness evaluations.
    pub evaluations: u64,
    /// Best fitness ever observed.
    pub best_fitness: f64,
    /// Why the run ended.
    pub termination: Termination,
    /// Whether the run ended by De Jong convergence (shorthand for
    /// `termination == Termination::Converged`).
    pub converged: bool,
    /// Best fitness of each evaluated population, in order: entry 0 is the
    /// seed population, entry `i > 0` is generation `i` (after elitism).
    /// Length is `generations_run + 1`.
    pub best_history: Vec<f64>,
}

/// The evolutionary engine (Fig. 3).
pub struct Engine<'a, P: EvolutionaryProblem> {
    problem: &'a P,
    config: EngineConfig,
}

impl<'a, P: EvolutionaryProblem> Engine<'a, P> {
    /// Binds a problem to a configuration.
    ///
    /// # Panics
    /// Panics if the population size is zero.
    pub fn new(problem: &'a P, config: EngineConfig) -> Self {
        assert!(config.population > 0, "population must be positive");
        Self { problem, config }
    }

    /// Runs to termination. `observer` sees every `(genome, fitness)`
    /// evaluation, including the seed population, in evaluation order.
    ///
    /// With `threads > 1` the fitness values are computed by a worker pool,
    /// but the observer still runs serially on this thread in population
    /// order, so callers see the exact same call sequence at any thread
    /// count.
    pub fn run<F: FnMut(&P::Genome, f64)>(&self, mut observer: F) -> RunStats
    where
        P: Sync,
        P::Genome: Sync,
    {
        let metrics = EngineMetrics::resolve();
        // Stage timing costs four clock reads per generation; spend them
        // only when someone collects the numbers (debug logging or an
        // explicit metrics request).
        let timed = obs::enabled(obs::Level::Debug) || obs::timing_enabled();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let p = self.config.population;
        let mut population: Vec<P::Genome> = (0..p)
            .map(|_| self.problem.random_genome(&mut rng))
            .collect();
        let mut evaluations: u64 = 0;
        let mut best = f64::INFINITY;

        let evaluate =
            |pop: &[P::Genome], observer: &mut F, evals: &mut u64, best: &mut f64| -> Vec<f64> {
                // Fitness first, fanned out when configured: `fitness` takes
                // `&self` and no RNG, so the values are independent of the
                // thread count. The bookkeeping pass below stays serial and
                // in population order — the observer (and therefore the
                // detector's best-set) sees an identical call sequence
                // whether the pool ran with 1 worker or 8.
                let values: Vec<f64> = if self.config.threads > 1 {
                    hdoutlier_pool::map(self.config.threads, pop, |_, g| {
                        let _eval = obs::profile_span(TARGET, "evaluate");
                        self.problem.fitness(g)
                    })
                } else {
                    pop.iter()
                        .map(|g| {
                            let _eval = obs::profile_span(TARGET, "evaluate");
                            self.problem.fitness(g)
                        })
                        .collect()
                };
                for (g, &f) in pop.iter().zip(&values) {
                    *evals += 1;
                    if f < *best {
                        *best = f;
                    }
                    observer(g, f);
                }
                values
            };

        let gen_best = |fitness: &[f64]| fitness.iter().copied().fold(f64::INFINITY, f64::min);

        let (mut fitness, _) = timed_stage(timed, &metrics.evaluate_us, || {
            evaluate(&population, &mut observer, &mut evaluations, &mut best)
        });
        metrics.evaluations.add(evaluations);
        let mut best_history = vec![gen_best(&fitness)];
        obs::event(
            obs::Level::Debug,
            TARGET,
            "seed",
            &[
                ("population", obs::Value::U64(p as u64)),
                ("best", obs::Value::F64(best)),
            ],
        );

        let mut generations = 0usize;
        let mut stall = 0usize;
        // Elite snapshot carried between generations when elitism is on.
        let mut elite: Vec<(P::Genome, f64)> = if self.config.elitism > 0 {
            let mut order: Vec<usize> = (0..population.len()).collect();
            order.sort_by(|&a, &b| fitness[a].partial_cmp(&fitness[b]).expect("comparable"));
            order
                .into_iter()
                .take(self.config.elitism)
                .map(|i| (population[i].clone(), fitness[i]))
                .collect()
        } else {
            Vec::new()
        };
        let termination = loop {
            // Termination checks first, so a converged seed stops at once.
            let views: Vec<Vec<u32>> = population
                .iter()
                .map(|g| self.problem.gene_view(g))
                .collect();
            if population_converged(&views, self.config.convergence_threshold) {
                break Termination::Converged;
            }
            if generations >= self.config.max_generations {
                break Termination::MaxGenerations;
            }
            if let Some(limit) = self.config.stall_generations {
                if stall >= limit {
                    break Termination::Stalled;
                }
            }

            let gen_start = if timed { Some(Instant::now()) } else { None };

            // Selection.
            let (mut next, selection_us) = timed_stage(timed, &metrics.selection_us, || {
                let parents = self.config.selection.select(&fitness, &mut rng);
                parents
                    .iter()
                    .map(|&i| population[i].clone())
                    .collect::<Vec<P::Genome>>()
            });

            // Crossover: match pairwise (Fig. 5 "match the solutions in the
            // population pairwise"); an odd trailing member passes through.
            let (_, crossover_us) = timed_stage(timed, &metrics.crossover_us, || {
                for pair in (0..next.len() / 2).map(|i| 2 * i) {
                    let (a, b) = (next[pair].clone(), next[pair + 1].clone());
                    let (c, d) = self.problem.crossover(&a, &b, &mut rng);
                    next[pair] = c;
                    next[pair + 1] = d;
                }
            });

            // Mutation.
            let (_, mutation_us) = timed_stage(timed, &metrics.mutation_us, || {
                for genome in next.iter_mut() {
                    self.problem.mutate(genome, &mut rng);
                }
            });

            population = next;
            let before = best;
            let evals_before = evaluations;
            let (new_fitness, evaluate_us) = timed_stage(timed, &metrics.evaluate_us, || {
                evaluate(&population, &mut observer, &mut evaluations, &mut best)
            });
            fitness = new_fitness;
            metrics.evaluations.add(evaluations - evals_before);

            // Elitism: reinstate the previous generation's best genomes over
            // this generation's worst (using the already-computed fitness of
            // both, so no extra evaluations are spent).
            if self.config.elitism > 0 {
                let e = self.config.elitism.min(elite.len());
                let mut worst: Vec<usize> = (0..population.len()).collect();
                worst.sort_by(|&a, &b| fitness[b].partial_cmp(&fitness[a]).expect("comparable"));
                for (slot, (genome, f)) in worst.iter().zip(elite.drain(..e)) {
                    if f < fitness[*slot] {
                        population[*slot] = genome;
                        fitness[*slot] = f;
                    }
                }
            }
            // Snapshot the elite for the next generation.
            if self.config.elitism > 0 {
                let mut order: Vec<usize> = (0..population.len()).collect();
                order.sort_by(|&a, &b| fitness[a].partial_cmp(&fitness[b]).expect("comparable"));
                elite = order
                    .into_iter()
                    .take(self.config.elitism)
                    .map(|i| (population[i].clone(), fitness[i]))
                    .collect();
            }

            best_history.push(gen_best(&fitness));
            metrics.generations.inc();
            if let Some(start) = gen_start {
                metrics
                    .generation_us
                    .record(start.elapsed().as_micros() as f64);
            }
            if obs::enabled(obs::Level::Debug) {
                // Convergence fraction and population statistics are only
                // computed when someone is listening at Debug — the loop's
                // own convergence test reuses none of this.
                let views: Vec<Vec<u32>> = population
                    .iter()
                    .map(|g| self.problem.gene_view(g))
                    .collect();
                let convergence = gene_convergence(&views).into_iter().fold(1.0f64, f64::min);
                let finite: Vec<f64> = fitness.iter().copied().filter(|f| f.is_finite()).collect();
                let mean = if finite.is_empty() {
                    f64::NAN
                } else {
                    finite.iter().sum::<f64>() / finite.len() as f64
                };
                obs::event(
                    obs::Level::Debug,
                    TARGET,
                    "generation",
                    &[
                        ("generation", obs::Value::U64(generations as u64 + 1)),
                        ("best", obs::Value::F64(best)),
                        ("gen_best", obs::Value::F64(gen_best(&fitness))),
                        ("mean", obs::Value::F64(mean)),
                        (
                            "infeasible",
                            obs::Value::U64((fitness.len() - finite.len()) as u64),
                        ),
                        ("convergence", obs::Value::F64(convergence)),
                        ("selection_us", obs::Value::U64(selection_us)),
                        ("crossover_us", obs::Value::U64(crossover_us)),
                        ("mutation_us", obs::Value::U64(mutation_us)),
                        ("evaluate_us", obs::Value::U64(evaluate_us)),
                    ],
                );
            }

            stall = if best < before { 0 } else { stall + 1 };
            generations += 1;
        };

        obs::event(
            obs::Level::Info,
            TARGET,
            "run",
            &[
                ("generations", obs::Value::U64(generations as u64)),
                ("evaluations", obs::Value::U64(evaluations)),
                ("best_fitness", obs::Value::F64(best)),
                ("termination", obs::Value::Str(termination.as_str())),
            ],
        );

        RunStats {
            generations_run: generations,
            evaluations,
            best_fitness: best,
            termination,
            converged: termination == Termination::Converged,
            best_history,
        }
    }

    /// The bound configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }
}

/// Convenience: a seeded `StdRng` for callers implementing
/// [`EvolutionaryProblem`] operators in tests.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform two-point segment-exchange crossover over equal-length vectors —
/// the generic "unbiased" recombination of §2.2, exposed here because both
/// the outlier problem's baseline crossover and test problems use it.
///
/// Picks one cut position uniformly in `1..len` and swaps the suffixes.
/// (The paper calls this "two-point" in the sense of two crossover
/// *products*; the operation is the classic single-cut exchange illustrated
/// by its `3*2*1 × 1*33* → 3*23* / 1*3*1` example.)
///
/// Returns clones unchanged when `len < 2`.
pub fn two_point_crossover<T: Clone, R: Rng>(a: &[T], b: &[T], rng: &mut R) -> (Vec<T>, Vec<T>) {
    assert_eq!(a.len(), b.len(), "genome length mismatch");
    let n = a.len();
    if n < 2 {
        return (a.to_vec(), b.to_vec());
    }
    let cut = rng.gen_range(1..n);
    let mut c = a[..cut].to_vec();
    c.extend_from_slice(&b[cut..]);
    let mut d = b[..cut].to_vec();
    d.extend_from_slice(&a[cut..]);
    (c, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// OneMax in minimized form: genome of 0/1, fitness = -(number of ones).
    struct OneMax {
        len: usize,
        mutation_rate: f64,
    }

    impl EvolutionaryProblem for OneMax {
        type Genome = Vec<u8>;

        fn random_genome(&self, rng: &mut StdRng) -> Vec<u8> {
            (0..self.len).map(|_| rng.gen_range(0..=1)).collect()
        }

        fn fitness(&self, g: &Vec<u8>) -> f64 {
            -(g.iter().filter(|&&b| b == 1).count() as f64)
        }

        fn crossover(&self, a: &Vec<u8>, b: &Vec<u8>, rng: &mut StdRng) -> (Vec<u8>, Vec<u8>) {
            two_point_crossover(a, b, rng)
        }

        fn mutate(&self, g: &mut Vec<u8>, rng: &mut StdRng) {
            for bit in g.iter_mut() {
                if rng.gen::<f64>() < self.mutation_rate {
                    *bit ^= 1;
                }
            }
        }

        fn gene_view(&self, g: &Vec<u8>) -> Vec<u32> {
            g.iter().map(|&b| b as u32).collect()
        }
    }

    #[test]
    fn solves_onemax() {
        let problem = OneMax {
            len: 24,
            mutation_rate: 0.01,
        };
        let engine = Engine::new(
            &problem,
            EngineConfig {
                population: 60,
                max_generations: 300,
                seed: 42,
                ..EngineConfig::default()
            },
        );
        let stats = engine.run(|_, _| {});
        assert!(
            stats.best_fitness <= -22.0,
            "best {} after {} generations",
            stats.best_fitness,
            stats.generations_run
        );
        assert!(stats.evaluations >= 60);
        assert_eq!(stats.best_history.len(), stats.generations_run + 1);
        // The history's global minimum is the best fitness ever seen.
        let hist_min = stats
            .best_history
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert_eq!(hist_min, stats.best_fitness);
    }

    #[test]
    fn deterministic_under_seed() {
        let problem = OneMax {
            len: 16,
            mutation_rate: 0.02,
        };
        let config = EngineConfig {
            population: 30,
            max_generations: 50,
            seed: 7,
            ..EngineConfig::default()
        };
        let run = |cfg: &EngineConfig| {
            let engine = Engine::new(&problem, cfg.clone());
            let mut trace = Vec::new();
            let stats = engine.run(|_, f| trace.push(f));
            (trace, stats.best_fitness, stats.generations_run)
        };
        assert_eq!(run(&config), run(&config));
        let other = EngineConfig {
            seed: 8,
            ..config.clone()
        };
        assert_ne!(run(&config).0, run(&other).0);
    }

    #[test]
    fn parallel_evaluation_is_thread_count_invariant() {
        // The pool only computes fitness values; selection/crossover/mutation
        // stay on the seeded stream and the observer runs serially, so the
        // full evaluation trace must be byte-identical at any thread count.
        let problem = OneMax {
            len: 20,
            mutation_rate: 0.02,
        };
        let run = |threads: usize| {
            let engine = Engine::new(
                &problem,
                EngineConfig {
                    population: 40,
                    max_generations: 60,
                    seed: 11,
                    threads,
                    ..EngineConfig::default()
                },
            );
            let mut trace: Vec<u64> = Vec::new();
            let stats = engine.run(|_, f| trace.push(f.to_bits()));
            (
                trace,
                stats.best_fitness.to_bits(),
                stats.generations_run,
                stats.evaluations,
                stats
                    .best_history
                    .iter()
                    .map(|f| f.to_bits())
                    .collect::<Vec<_>>(),
            )
        };
        let serial = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn converged_seed_population_stops_immediately() {
        // Mutation off, crossover preserves identical genomes; a fully
        // uniform random problem where random_genome is constant converges
        // in the seed generation.
        struct Constant;
        impl EvolutionaryProblem for Constant {
            type Genome = Vec<u8>;
            fn random_genome(&self, _: &mut StdRng) -> Vec<u8> {
                vec![1, 2, 3]
            }
            fn fitness(&self, _: &Vec<u8>) -> f64 {
                0.0
            }
            fn crossover(&self, a: &Vec<u8>, b: &Vec<u8>, _: &mut StdRng) -> (Vec<u8>, Vec<u8>) {
                (a.clone(), b.clone())
            }
            fn mutate(&self, _: &mut Vec<u8>, _: &mut StdRng) {}
            fn gene_view(&self, g: &Vec<u8>) -> Vec<u32> {
                g.iter().map(|&b| b as u32).collect()
            }
        }
        let engine = Engine::new(&Constant, EngineConfig::default());
        let stats = engine.run(|_, _| {});
        assert_eq!(stats.generations_run, 0);
        assert_eq!(stats.termination, Termination::Converged);
        assert!(stats.converged);
        assert_eq!(stats.evaluations, 100);
        assert_eq!(stats.best_history, vec![0.0]);
    }

    #[test]
    fn max_generations_cap_applies() {
        // High mutation prevents convergence.
        let problem = OneMax {
            len: 30,
            mutation_rate: 0.5,
        };
        let engine = Engine::new(
            &problem,
            EngineConfig {
                population: 20,
                max_generations: 5,
                seed: 1,
                ..EngineConfig::default()
            },
        );
        let stats = engine.run(|_, _| {});
        assert_eq!(stats.generations_run, 5);
        assert_eq!(stats.termination, Termination::MaxGenerations);
        assert!(!stats.converged);
        assert_eq!(stats.best_history.len(), 6); // seed + 5 generations
    }

    #[test]
    fn stall_termination_fires() {
        // A flat fitness landscape never improves after the seed.
        struct Flat;
        impl EvolutionaryProblem for Flat {
            type Genome = Vec<u8>;
            fn random_genome(&self, rng: &mut StdRng) -> Vec<u8> {
                vec![rng.gen_range(0..=200)]
            }
            fn fitness(&self, _: &Vec<u8>) -> f64 {
                1.0
            }
            fn crossover(&self, a: &Vec<u8>, b: &Vec<u8>, _: &mut StdRng) -> (Vec<u8>, Vec<u8>) {
                (a.clone(), b.clone())
            }
            fn mutate(&self, g: &mut Vec<u8>, rng: &mut StdRng) {
                g[0] = rng.gen_range(0..=200); // keep the population diverse
            }
            fn gene_view(&self, g: &Vec<u8>) -> Vec<u32> {
                g.iter().map(|&b| b as u32).collect()
            }
        }
        let engine = Engine::new(
            &Flat,
            EngineConfig {
                population: 50,
                stall_generations: Some(3),
                max_generations: 1000,
                seed: 2,
                ..EngineConfig::default()
            },
        );
        let stats = engine.run(|_, _| {});
        assert_eq!(stats.termination, Termination::Stalled);
        assert!(!stats.converged);
        assert!(stats.generations_run <= 10);
    }

    #[test]
    fn observer_sees_every_evaluation() {
        let problem = OneMax {
            len: 8,
            mutation_rate: 0.05,
        };
        let engine = Engine::new(
            &problem,
            EngineConfig {
                population: 10,
                max_generations: 3,
                convergence_threshold: 1.01, // unreachable: force the cap
                seed: 3,
                ..EngineConfig::default()
            },
        );
        let mut count = 0u64;
        let stats = engine.run(|_, _| count += 1);
        assert_eq!(count, stats.evaluations);
        assert_eq!(count, 10 * 4); // seed + 3 generations
    }

    #[test]
    fn elitism_rescues_destructive_mutation() {
        // Mutation so hot it destroys good genomes every generation: without
        // elitism the population cannot hold on to progress; with it, the
        // best genomes persist and selection can climb.
        let problem = OneMax {
            len: 40,
            mutation_rate: 0.25,
        };
        let run = |elitism: usize| {
            let engine = Engine::new(
                &problem,
                EngineConfig {
                    population: 40,
                    max_generations: 120,
                    convergence_threshold: 1.01, // force the full budget
                    elitism,
                    seed: 77,
                    ..EngineConfig::default()
                },
            );
            engine.run(|_, _| {}).best_fitness
        };
        let without = run(0);
        let with = run(4);
        assert!(
            with <= without - 2.0,
            "elitism {with} vs none {without} (lower = better)"
        );
        assert!(with <= -34.0, "elitism should get close to optimal: {with}");
    }

    #[test]
    fn elitism_zero_matches_legacy_behavior() {
        let problem = OneMax {
            len: 12,
            mutation_rate: 0.05,
        };
        let config = EngineConfig {
            population: 20,
            max_generations: 25,
            seed: 5,
            ..EngineConfig::default()
        };
        let a = Engine::new(&problem, config.clone()).run(|_, _| {});
        let b = Engine::new(
            &problem,
            EngineConfig {
                elitism: 0,
                ..config
            },
        )
        .run(|_, _| {});
        assert_eq!(a.best_fitness, b.best_fitness);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    #[should_panic(expected = "population must be positive")]
    fn zero_population_panics() {
        let problem = OneMax {
            len: 4,
            mutation_rate: 0.0,
        };
        Engine::new(
            &problem,
            EngineConfig {
                population: 0,
                ..EngineConfig::default()
            },
        );
    }

    #[test]
    fn two_point_crossover_properties() {
        let mut rng = seeded_rng(11);
        let a = vec![1, 1, 1, 1, 1];
        let b = vec![2, 2, 2, 2, 2];
        for _ in 0..20 {
            let (c, d) = two_point_crossover(&a, &b, &mut rng);
            assert_eq!(c.len(), 5);
            // Each position comes from the opposite parent in d vs c.
            for i in 0..5 {
                assert_ne!(c[i], d[i]);
                assert!(c[i] == 1 || c[i] == 2);
            }
            // Prefix from a, suffix from b.
            let cut = c.iter().position(|&x| x == 2).unwrap_or(5);
            assert!(c[..cut].iter().all(|&x| x == 1));
            assert!(c[cut..].iter().all(|&x| x == 2));
        }
        // Degenerate lengths pass through.
        let (c, d) = two_point_crossover(&[7], &[9], &mut rng);
        assert_eq!((c, d), (vec![7], vec![9]));
        let (c, _) = two_point_crossover::<i32, _>(&[], &[], &mut rng);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn crossover_length_mismatch_panics() {
        let mut rng = seeded_rng(12);
        two_point_crossover(&[1, 2], &[1], &mut rng);
    }
}
