//! Selection schemes.
//!
//! All schemes sample `p` parents *with replacement* from a population of
//! `p` fitness values, returning indices. Fitness is minimized.

use hdoutlier_rng::Rng;
use hdoutlier_stats::rank::ranks;

/// Which selection pressure to apply each generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionScheme {
    /// The paper's scheme (Fig. 4): strings are ranked with the most
    /// negative fitness first (rank 1), and a string of rank `r` is sampled
    /// with probability proportional to `p − r`. The worst string gets
    /// weight 0. More stable than fitness-proportional selection because it
    /// only depends on the ordering, not the magnitudes.
    RankRoulette,
    /// Classic roulette on shifted fitness: weight `max_fitness − f(i)`.
    /// Degenerates when fitness values are nearly equal — the instability
    /// the paper cites for preferring rank selection.
    FitnessProportional,
    /// Pick `size` uniform candidates, keep the best. `size = 1` is uniform
    /// random selection (no pressure).
    Tournament {
        /// Number of candidates per tournament.
        size: usize,
    },
}

impl SelectionScheme {
    /// Samples `fitness.len()` parent indices.
    ///
    /// # Panics
    /// Panics on an empty population or a `Tournament { size: 0 }`.
    pub fn select<R: Rng>(&self, fitness: &[f64], rng: &mut R) -> Vec<usize> {
        let p = fitness.len();
        assert!(p > 0, "cannot select from an empty population");
        match self {
            SelectionScheme::RankRoulette => {
                // rank 0 = most negative. Paper weight p − r with 1-based
                // ranks ⇒ weights p−1 … 0 for 0-based ranks r: w = p−1−r.
                let r = ranks(fitness);
                let weights: Vec<f64> = r.iter().map(|&ri| (p - 1 - ri) as f64).collect();
                roulette(&weights, p, rng)
            }
            SelectionScheme::FitnessProportional => {
                let max = fitness.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let weights: Vec<f64> = fitness.iter().map(|&f| max - f).collect();
                roulette(&weights, p, rng)
            }
            SelectionScheme::Tournament { size } => {
                assert!(*size > 0, "tournament size must be positive");
                (0..p)
                    .map(|_| {
                        let mut best = rng.gen_range(0..p);
                        for _ in 1..*size {
                            let c = rng.gen_range(0..p);
                            if fitness[c] < fitness[best] {
                                best = c;
                            }
                        }
                        best
                    })
                    .collect()
            }
        }
    }
}

/// Roulette-wheel sampling of `n` indices proportional to `weights`.
/// If all weights are zero (e.g. a population of one under rank selection),
/// falls back to uniform sampling.
fn roulette<R: Rng>(weights: &[f64], n: usize, rng: &mut R) -> Vec<usize> {
    let total: f64 = weights.iter().sum();
    if total.is_nan() || total <= 0.0 {
        return (0..n).map(|_| rng.gen_range(0..weights.len())).collect();
    }
    // Cumulative table + binary search per draw: O(p log p) per generation.
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w.max(0.0);
        cumulative.push(acc);
    }
    (0..n)
        .map(|_| {
            let x = rng.gen::<f64>() * acc;
            cumulative
                .partition_point(|&c| c <= x)
                .min(weights.len() - 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_rng::rngs::StdRng;
    use hdoutlier_rng::SeedableRng;

    fn frequency(selected: &[usize], p: usize) -> Vec<f64> {
        let mut counts = vec![0usize; p];
        for &i in selected {
            counts[i] += 1;
        }
        counts
            .iter()
            .map(|&c| c as f64 / selected.len() as f64)
            .collect()
    }

    fn sample_many<R: Rng>(scheme: SelectionScheme, fitness: &[f64], rng: &mut R) -> Vec<usize> {
        let mut all = Vec::new();
        for _ in 0..2000 {
            all.extend(scheme.select(fitness, rng));
        }
        all
    }

    #[test]
    fn rank_roulette_matches_paper_weights() {
        // Fitness [-3, -1, -2, 0] → ranks 0,2,1,3 → weights 3,1,2,0,
        // expected frequencies 1/2, 1/6, 1/3, 0.
        let mut rng = StdRng::seed_from_u64(1);
        let fitness = [-3.0, -1.0, -2.0, 0.0];
        let freq = frequency(
            &sample_many(SelectionScheme::RankRoulette, &fitness, &mut rng),
            4,
        );
        assert!((freq[0] - 0.5).abs() < 0.02, "{freq:?}");
        assert!((freq[1] - 1.0 / 6.0).abs() < 0.02);
        assert!((freq[2] - 1.0 / 3.0).abs() < 0.02);
        assert_eq!(freq[3], 0.0, "worst string must never be selected");
    }

    #[test]
    fn rank_roulette_depends_only_on_order() {
        // Same ordering, wildly different magnitudes ⇒ same distribution.
        let mut rng1 = StdRng::seed_from_u64(2);
        let mut rng2 = StdRng::seed_from_u64(2);
        let a = sample_many(
            SelectionScheme::RankRoulette,
            &[-3.0, -2.0, -1.0],
            &mut rng1,
        );
        let b = sample_many(
            SelectionScheme::RankRoulette,
            &[-3000.0, -0.2, -0.1],
            &mut rng2,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn fitness_proportional_prefers_better() {
        let mut rng = StdRng::seed_from_u64(3);
        let fitness = [-10.0, -5.0, 0.0];
        let freq = frequency(
            &sample_many(SelectionScheme::FitnessProportional, &fitness, &mut rng),
            3,
        );
        // Weights 10, 5, 0 → 2/3, 1/3, 0.
        assert!((freq[0] - 2.0 / 3.0).abs() < 0.02, "{freq:?}");
        assert!((freq[1] - 1.0 / 3.0).abs() < 0.02);
        assert_eq!(freq[2], 0.0);
    }

    #[test]
    fn fitness_proportional_collapses_on_flat_fitness() {
        // The instability the paper warns about: equal fitness ⇒ uniform.
        let mut rng = StdRng::seed_from_u64(4);
        let freq = frequency(
            &sample_many(
                SelectionScheme::FitnessProportional,
                &[-1.0, -1.0],
                &mut rng,
            ),
            2,
        );
        assert!((freq[0] - 0.5).abs() < 0.03);
    }

    #[test]
    fn tournament_pressure_increases_with_size() {
        let fitness = [-2.0, -1.0, 0.0, 1.0];
        let mut rng = StdRng::seed_from_u64(5);
        let f2 = frequency(
            &sample_many(SelectionScheme::Tournament { size: 2 }, &fitness, &mut rng),
            4,
        );
        let f4 = frequency(
            &sample_many(SelectionScheme::Tournament { size: 4 }, &fitness, &mut rng),
            4,
        );
        assert!(f4[0] > f2[0], "larger tournaments favor the best more");
        // size-2 theory: best selected with prob 1 - (3/4)^2 = 7/16.
        assert!((f2[0] - 7.0 / 16.0).abs() < 0.02, "{f2:?}");
    }

    #[test]
    fn tournament_size_one_is_uniform() {
        let mut rng = StdRng::seed_from_u64(6);
        let freq = frequency(
            &sample_many(
                SelectionScheme::Tournament { size: 1 },
                &[-5.0, 0.0],
                &mut rng,
            ),
            2,
        );
        assert!((freq[0] - 0.5).abs() < 0.03);
    }

    #[test]
    fn population_of_one_survives() {
        let mut rng = StdRng::seed_from_u64(7);
        for scheme in [
            SelectionScheme::RankRoulette,
            SelectionScheme::FitnessProportional,
            SelectionScheme::Tournament { size: 3 },
        ] {
            assert_eq!(scheme.select(&[-1.0], &mut rng), vec![0]);
        }
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        SelectionScheme::RankRoulette.select(&[], &mut rng);
    }

    #[test]
    #[should_panic(expected = "tournament size")]
    fn zero_tournament_panics() {
        let mut rng = StdRng::seed_from_u64(9);
        SelectionScheme::Tournament { size: 0 }.select(&[1.0], &mut rng);
    }

    #[test]
    fn output_size_matches_population() {
        let mut rng = StdRng::seed_from_u64(10);
        let fitness: Vec<f64> = (0..17).map(|i| -(i as f64)).collect();
        for scheme in [
            SelectionScheme::RankRoulette,
            SelectionScheme::FitnessProportional,
            SelectionScheme::Tournament { size: 2 },
        ] {
            assert_eq!(scheme.select(&fitness, &mut rng).len(), 17);
        }
    }
}
