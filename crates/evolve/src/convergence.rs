//! De Jong's convergence criterion (paper §2.1).
//!
//! "Dejong defined convergence of a *gene* as the stage at which 95 % of the
//! population had the same value for that gene. The population is said to
//! have converged when all genes have converged."
//!
//! Genomes are viewed as slices of discrete gene values (`u32`); the
//! problem adapter in `hdoutlier-core` maps projection strings onto that
//! view.

use std::collections::HashMap;

/// Fraction of the population sharing the most common value for each gene
/// position. Positions range over the *shortest* genome if lengths differ
/// (length disagreement means the population certainly has not converged,
/// and the engine treats it so).
pub fn gene_convergence(population: &[Vec<u32>]) -> Vec<f64> {
    let Some(first) = population.first() else {
        return Vec::new();
    };
    let len = population.iter().map(Vec::len).min().unwrap_or(0);
    let _ = first;
    let p = population.len() as f64;
    (0..len)
        .map(|g| {
            let mut counts: HashMap<u32, usize> = HashMap::new();
            for genome in population {
                *counts.entry(genome[g]).or_insert(0) += 1;
            }
            counts.values().copied().max().unwrap_or(0) as f64 / p
        })
        .collect()
}

/// Whether every gene position has converged at `threshold` (De Jong used
/// 0.95). Populations with genomes of unequal length never converge; empty
/// populations are vacuously converged.
pub fn population_converged(population: &[Vec<u32>], threshold: f64) -> bool {
    if population.is_empty() {
        return true;
    }
    let len = population[0].len();
    if population.iter().any(|g| g.len() != len) {
        return false;
    }
    gene_convergence(population).iter().all(|&f| f >= threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_identical_population_is_converged() {
        let pop = vec![vec![1, 2, 3]; 20];
        assert!(population_converged(&pop, 0.95));
        assert_eq!(gene_convergence(&pop), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn exactly_at_threshold_converges() {
        // 19 of 20 share each gene: 0.95 exactly.
        let mut pop = vec![vec![1, 1]; 19];
        pop.push(vec![2, 2]);
        assert!(population_converged(&pop, 0.95));
        assert!(!population_converged(&pop, 0.96));
    }

    #[test]
    fn one_diverse_gene_blocks_convergence() {
        // Gene 0 identical; gene 1 split 50/50.
        let mut pop = vec![vec![7, 0]; 10];
        pop.extend(vec![vec![7, 1]; 10]);
        let conv = gene_convergence(&pop);
        assert_eq!(conv[0], 1.0);
        assert_eq!(conv[1], 0.5);
        assert!(!population_converged(&pop, 0.95));
    }

    #[test]
    fn unequal_lengths_never_converge() {
        let pop = vec![vec![1, 2], vec![1, 2, 3]];
        assert!(!population_converged(&pop, 0.5));
    }

    #[test]
    fn empty_population_is_vacuously_converged() {
        assert!(population_converged(&[], 0.95));
        assert!(gene_convergence(&[]).is_empty());
    }

    #[test]
    fn single_member_population_is_converged() {
        assert!(population_converged(&[vec![3, 1, 4]], 0.95));
    }

    #[test]
    fn zero_length_genomes_are_converged() {
        let pop = vec![vec![], vec![]];
        assert!(population_converged(&pop, 0.95));
    }
}
