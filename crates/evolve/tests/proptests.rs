//! Property-based tests for the evolutionary-search substrate.

use hdoutlier_evolve::{
    gene_convergence, population_converged, two_point_crossover, SelectionScheme,
};
use hdoutlier_rng::rngs::StdRng;
use hdoutlier_rng::SeedableRng;
use proptest::prelude::*;

proptest! {
    #[test]
    fn selection_returns_valid_indices(
        fitness in proptest::collection::vec(-100f64..100.0, 1..40),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for scheme in [
            SelectionScheme::RankRoulette,
            SelectionScheme::FitnessProportional,
            SelectionScheme::Tournament { size: 3 },
        ] {
            let selected = scheme.select(&fitness, &mut rng);
            prop_assert_eq!(selected.len(), fitness.len());
            prop_assert!(selected.iter().all(|&i| i < fitness.len()));
        }
    }

    #[test]
    fn rank_roulette_never_selects_the_unique_worst(
        fitness in proptest::collection::vec(-100f64..100.0, 2..30),
        seed in any::<u64>(),
    ) {
        // Make the maximum unique.
        let mut fitness = fitness;
        let max = fitness.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let worst_idx = fitness.iter().position(|&f| f == max).unwrap();
        fitness[worst_idx] = max + 1.0;
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let selected = SelectionScheme::RankRoulette.select(&fitness, &mut rng);
            prop_assert!(!selected.contains(&worst_idx));
        }
    }

    #[test]
    fn convergence_thresholds_are_monotone(
        pop in proptest::collection::vec(
            proptest::collection::vec(0u32..4, 5),
            1..30,
        ),
        t1 in 0.1f64..1.0,
        t2 in 0.1f64..1.0,
    ) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        // Converged at a stricter threshold ⇒ converged at a looser one.
        if population_converged(&pop, hi) {
            prop_assert!(population_converged(&pop, lo));
        }
    }

    #[test]
    fn gene_convergence_bounds(
        pop in proptest::collection::vec(
            proptest::collection::vec(0u32..6, 4),
            1..40,
        ),
    ) {
        let conv = gene_convergence(&pop);
        prop_assert_eq!(conv.len(), 4);
        let min_share = 1.0 / pop.len() as f64;
        for &c in &conv {
            prop_assert!(c >= min_share - 1e-12 && c <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn identical_population_always_converges(
        genome in proptest::collection::vec(0u32..9, 0..8),
        n in 1usize..20,
        threshold in 0.05f64..1.0,
    ) {
        let pop = vec![genome; n];
        prop_assert!(population_converged(&pop, threshold));
    }

    #[test]
    fn two_point_crossover_preserves_multiset(
        a in proptest::collection::vec(0u8..10, 2..20),
        seed in any::<u64>(),
    ) {
        let b: Vec<u8> = a.iter().map(|&x| x.wrapping_add(1) % 10).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let (c, d) = two_point_crossover(&a, &b, &mut rng);
        prop_assert_eq!(c.len(), a.len());
        for i in 0..a.len() {
            let mut got = [c[i], d[i]];
            let mut want = [a[i], b[i]];
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
