//! Client-side retry pacing: exponential backoff with decorrelated jitter
//! that honors server `Retry-After` hints.
//!
//! The server side of this crate sheds load with `503 + Retry-After` and
//! expires stalled requests with `408`; this module is the matching client
//! discipline, so every in-tree client (`examples/serve_client.rs`,
//! `serve_bench`, tests) backs off the same way instead of hammering a
//! shedding server in lockstep. The schedule is the "decorrelated jitter"
//! variant: each delay is drawn uniformly from `[base, 3 × previous]`,
//! capped at `cap` — it spreads a thundering herd apart (pure exponential
//! backoff keeps retrying clients synchronized) while still growing fast
//! enough to drain an overload. A server `Retry-After` acts as a floor:
//! the client never comes back sooner than the server asked.
//!
//! Retries are only safe against `hdoutlier serve` when the request is
//! idempotent. Score POSTs become idempotent by sending an `X-Request-Id`:
//! the server's per-session replay cache returns the original verdict
//! batch for a duplicate id instead of scoring the records twice — so a
//! client must reuse the *same* id across retries of one logical request
//! and a *fresh* id for each new one.

use hdoutlier_rng::{RngCore, SeedableRng, Xoshiro256PlusPlus};
use std::time::Duration;

/// The retry schedule's shape.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// The minimum (and first) delay.
    pub base: Duration,
    /// The maximum delay any single wait is clamped to.
    pub cap: Duration,
    /// Retries allowed after the initial attempt; when exhausted,
    /// [`Backoff::next_delay`] returns `None` and the caller gives up.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(100),
            cap: Duration::from_secs(5),
            max_retries: 5,
        }
    }
}

/// One request's retry state: feed it each failure, sleep what it returns.
///
/// ```
/// use hdoutlier_net::retry::{Backoff, RetryPolicy};
/// let mut backoff = Backoff::new(RetryPolicy::default(), 42);
/// // on a 503: parse the server's Retry-After and ask for the next delay
/// if let Some(delay) = backoff.next_delay(Some(std::time::Duration::from_secs(1))) {
///     assert!(delay >= std::time::Duration::from_secs(1));
///     // std::thread::sleep(delay); then retry with the SAME X-Request-Id
/// }
/// ```
#[derive(Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    prev: Duration,
    retries_left: u32,
    rng: Xoshiro256PlusPlus,
}

impl Backoff {
    /// A fresh schedule. `seed` decorrelates concurrent clients (hash a
    /// request id, a pid, a worker index — anything that differs between
    /// them); the same seed replays the same schedule, which keeps tests
    /// deterministic.
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        let prev = policy.base;
        let retries_left = policy.max_retries;
        Backoff {
            policy,
            prev,
            retries_left,
            rng: Xoshiro256PlusPlus::seed_from_u64(seed),
        }
    }

    /// Retries not yet consumed.
    pub fn retries_left(&self) -> u32 {
        self.retries_left
    }

    /// The next delay to sleep before retrying, or `None` when the retry
    /// budget is exhausted. `retry_after` is the server's hint (from a
    /// `Retry-After` header, via [`parse_retry_after`]) and floors the
    /// returned delay — jitter can wait longer than asked, never shorter.
    pub fn next_delay(&mut self, retry_after: Option<Duration>) -> Option<Duration> {
        if self.retries_left == 0 {
            return None;
        }
        self.retries_left -= 1;
        // Decorrelated jitter: uniform in [base, prev * 3], clamped to cap.
        let base_us = self.policy.base.as_micros() as u64;
        let high_us = (self.prev.as_micros() as u64)
            .saturating_mul(3)
            .max(base_us);
        let span = high_us - base_us;
        let drawn_us = base_us
            + if span == 0 {
                0
            } else {
                self.rng.next_u64() % (span + 1)
            };
        let jittered = Duration::from_micros(drawn_us).min(self.policy.cap);
        self.prev = jittered;
        Some(jittered.max(retry_after.unwrap_or(Duration::ZERO)))
    }
}

/// Parses a `Retry-After` header value in its delta-seconds form (the only
/// form this workspace's servers emit). HTTP-date values and garbage parse
/// to `None` — the caller falls back to pure backoff.
pub fn parse_retry_after(value: &str) -> Option<Duration> {
    value.trim().parse::<u64>().ok().map(Duration::from_secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_stay_inside_base_and_cap() {
        let policy = RetryPolicy {
            base: Duration::from_millis(50),
            cap: Duration::from_millis(400),
            max_retries: 32,
        };
        let mut backoff = Backoff::new(policy.clone(), 7);
        while let Some(delay) = backoff.next_delay(None) {
            assert!(delay >= policy.base, "{delay:?} under base");
            assert!(delay <= policy.cap, "{delay:?} over cap");
        }
    }

    #[test]
    fn budget_exhausts_after_max_retries() {
        let mut backoff = Backoff::new(
            RetryPolicy {
                max_retries: 3,
                ..RetryPolicy::default()
            },
            1,
        );
        assert_eq!(backoff.retries_left(), 3);
        for _ in 0..3 {
            assert!(backoff.next_delay(None).is_some());
        }
        assert!(backoff.next_delay(None).is_none());
        assert!(backoff.next_delay(None).is_none(), "stays exhausted");
    }

    #[test]
    fn retry_after_floors_the_delay() {
        let mut backoff = Backoff::new(
            RetryPolicy {
                base: Duration::from_millis(1),
                cap: Duration::from_millis(10),
                max_retries: 4,
            },
            9,
        );
        // The cap is 10ms but the server asked for 2s: the server wins.
        let delay = backoff.next_delay(Some(Duration::from_secs(2))).unwrap();
        assert!(delay >= Duration::from_secs(2));
        // Without a hint the schedule returns to its own (capped) range.
        let delay = backoff.next_delay(None).unwrap();
        assert!(delay <= Duration::from_millis(10));
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let policy = RetryPolicy::default();
        let mut a = Backoff::new(policy.clone(), 1234);
        let mut b = Backoff::new(policy.clone(), 1234);
        let mut c = Backoff::new(policy, 4321);
        let schedule_a: Vec<_> = std::iter::from_fn(|| a.next_delay(None)).collect();
        let schedule_b: Vec<_> = std::iter::from_fn(|| b.next_delay(None)).collect();
        let schedule_c: Vec<_> = std::iter::from_fn(|| c.next_delay(None)).collect();
        assert_eq!(schedule_a, schedule_b);
        assert_ne!(schedule_a, schedule_c, "different seeds decorrelate");
    }

    #[test]
    fn retry_after_parses_delta_seconds_only() {
        assert_eq!(parse_retry_after("2"), Some(Duration::from_secs(2)));
        assert_eq!(parse_retry_after(" 10 "), Some(Duration::from_secs(10)));
        assert_eq!(parse_retry_after("soon"), None);
        assert_eq!(parse_retry_after("-1"), None);
        assert_eq!(parse_retry_after("Wed, 21 Oct 2015 07:28:00 GMT"), None);
    }
}
