#![warn(missing_docs)]

//! A std-only HTTP/1.1 server shared by the hdoutlier serving surfaces.
//!
//! This crate hoists the network substrate out of the telemetry layer so
//! serving *traffic* (the `hdoutlier serve` scoring API) is no longer
//! coupled to serving *telemetry* (`/metrics` scrapes): both ride on the
//! same [`Server`], each with its own handler. The workspace is hermetic —
//! no crates.io — so everything here is `std::net` plus threads.
//!
//! What the server provides, and what its callers lean on:
//!
//! - **Bounded request parsing** ([`Request`]): request line, headers, and
//!   an optional `Content-Length` body are read incrementally, tolerating
//!   arbitrary packet boundaries (a client dribbling one byte at a time
//!   parses identically to one that sends the whole request in one write).
//!   Heads over [`ServerConfig::max_head_bytes`] answer `431`, bodies over
//!   [`ServerConfig::max_body_bytes`] answer `413`, a body without a
//!   length answers `411`, and anything malformed answers `400` — all
//!   without allocating proportional to the hostile input.
//! - **Wall-clock deadlines.** The per-read [`ServerConfig::io_timeout`]
//!   only bounds *silence*; a slowloris client that dribbles one byte per
//!   read resets it forever. So each phase also has a deadline — a head
//!   must finish arriving within [`ServerConfig::head_deadline`] of its
//!   first byte, a declared body within [`ServerConfig::body_deadline`] of
//!   the head completing, and a whole connection is capped at
//!   [`ServerConfig::connection_lifetime`]. Expiry answers `408` with
//!   `Connection: close` (idle keep-alive connections are closed silently),
//!   so no client can pin a worker past its budget.
//! - **A bounded connection budget.** One accept thread pushes connections
//!   onto a queue of depth [`ServerConfig::queue_depth`] drained by
//!   [`ServerConfig::workers`] handler threads. A slow or stuck client
//!   occupies one worker, not the listener: other connections keep being
//!   answered. When every worker is busy *and* the queue is full, new
//!   connections are refused with `503` instead of piling up unboundedly.
//! - **Keep-alive semantics.** HTTP/1.1 connections persist by default
//!   (`Connection: close` honored, `HTTP/1.0` closes unless asked to keep
//!   alive), capped at [`ServerConfig::max_requests_per_connection`].
//!   Telemetry callers set the cap to 1 to preserve scrape-and-close
//!   behavior.
//! - **Graceful drain.** [`Server::shutdown`] stops accepting (closing the
//!   listener first), then lets in-flight and already-queued connections
//!   finish their current request — with `Connection: close` forced on the
//!   response — before joining every thread. Nothing in flight is dropped.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub mod retry;

/// Write budget for connection-budget `503` refusals. These are written
/// inline on the single accept thread (there is no free worker to hand
/// them to — that is why they are being refused), so they get a short
/// dedicated timeout instead of [`ServerConfig::io_timeout`]: a rejected
/// peer that stalls its receive window must not pause all accepts for the
/// full I/O timeout at exactly the moment the server is saturated.
const REFUSAL_WRITE_TIMEOUT: Duration = Duration::from_millis(500);

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request path with the query string stripped (`/sessions/a/score`).
    pub path: String,
    /// The query string after `?`, when one was sent (without the `?`).
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names are lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the request was `HTTP/1.0` (keep-alive defaults off).
    pub http1_0: bool,
    /// The request's identity: a client-supplied `X-Request-Id` header
    /// (when well-formed — see [`is_valid_request_id`]) or a server-
    /// generated hex id. Echoed back as `X-Request-Id` on the response.
    pub request_id: String,
}

impl Request {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    /// A short message when the body is not valid UTF-8.
    pub fn body_utf8(&self) -> Result<&str, &'static str> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not valid UTF-8")
    }
}

/// One HTTP response: status, content type, body, optional extra headers.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `404`, …). The reason phrase is derived.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Extra headers beyond the framing set (`Retry-After`, …). Names and
    /// values are written verbatim into the response head; callers must not
    /// include CR/LF. [`Response::with_header`] enforces this — prefer it
    /// over pushing here directly.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain".to_string(),
            body: body.into().into_bytes(),
            headers: Vec::new(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json".to_string(),
            body: body.into().into_bytes(),
            headers: Vec::new(),
        }
    }

    /// An `application/x-ndjson` response.
    pub fn ndjson(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/x-ndjson".to_string(),
            body: body.into().into_bytes(),
            headers: Vec::new(),
        }
    }

    /// Overrides the `Content-Type` (builder style), for media types the
    /// [`Response::text`]/[`Response::json`]/[`Response::ndjson`]
    /// constructors don't cover.
    #[must_use]
    pub fn with_content_type(mut self, content_type: impl Into<String>) -> Self {
        self.content_type = content_type.into();
        self
    }

    /// Adds an extra response header (builder style).
    ///
    /// Header names and values are written verbatim into the response
    /// head, so a CR/LF smuggled in (e.g. from a client-derived value)
    /// would become header or response injection. Each CR/LF is replaced
    /// with a space here, making the wire framing unbreakable by any
    /// header content a handler passes.
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        let sanitize = |s: String| {
            if s.contains(['\r', '\n']) {
                s.replace(['\r', '\n'], " ")
            } else {
                s
            }
        };
        self.headers
            .push((sanitize(name.into()), sanitize(value.into())));
        self
    }

    /// Adds a `Retry-After: <seconds>` header — the contract every shedding
    /// or over-budget `503` honors so clients built on [`retry::Backoff`]
    /// know how long to stay away.
    #[must_use]
    pub fn with_retry_after(self, delay: Duration) -> Self {
        self.with_header("Retry-After", delay.as_secs().max(1).to_string())
    }

    /// The canonical reason phrase for a status code.
    pub fn reason(status: u16) -> &'static str {
        match status {
            100 => "Continue",
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            411 => "Length Required",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }
}

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection-handler threads (each serves one connection at a time).
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before new
    /// ones are refused with `503`.
    pub queue_depth: usize,
    /// Cap on request-head bytes (request line + headers); `431` beyond.
    pub max_head_bytes: usize,
    /// Cap on declared `Content-Length`; `413` beyond.
    pub max_body_bytes: usize,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// Requests served per connection before it is closed; `1` disables
    /// keep-alive entirely (scrape-and-close behavior).
    pub max_requests_per_connection: usize,
    /// Wall-clock budget for reading one request head. Unlike
    /// [`ServerConfig::io_timeout`] — which a slow-trickle client resets
    /// with every byte — this is a deadline: when the head has not finished
    /// arriving within it, the request is answered `408` and the connection
    /// closed (or, when no byte ever arrived, the idle connection is simply
    /// closed).
    pub head_deadline: Duration,
    /// Wall-clock budget for reading the declared body once the head is
    /// complete; `408` on expiry.
    pub body_deadline: Duration,
    /// Cap on one connection's total lifetime across keep-alive requests.
    /// A connection past it is closed after the in-flight response (or
    /// immediately when idle) — no single peer can hold a worker's socket
    /// forever.
    pub connection_lifetime: Duration,
    /// The `Retry-After` hint attached to connection-budget `503` refusals
    /// (rounded up to whole seconds, minimum 1).
    pub retry_after: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            max_head_bytes: 16 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
            io_timeout: Duration::from_secs(10),
            max_requests_per_connection: 256,
            head_deadline: Duration::from_secs(10),
            body_deadline: Duration::from_secs(30),
            connection_lifetime: Duration::from_secs(600),
            retry_after: Duration::from_secs(1),
        }
    }
}

/// Monotonic totals over a server's lifetime, readable while it runs.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted (including ones later refused with `503`).
    pub connections: AtomicU64,
    /// Requests answered by the handler.
    pub requests: AtomicU64,
    /// Connections refused with `503` because the budget was exhausted.
    pub rejected: AtomicU64,
    /// Requests answered with a parse-level error (`400`/`411`/`413`/`431`).
    pub bad_requests: AtomicU64,
    /// Requests answered `408` because a wall-clock deadline expired
    /// (head or body still incomplete at its budget).
    pub deadline_expired: AtomicU64,
}

/// The handler a [`Server`] routes every parsed request through.
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync;

/// Whether a client-supplied `X-Request-Id` is acceptable for echoing:
/// 1–128 visible ASCII characters (no spaces, no controls — the id goes
/// back out in a response header and into log lines verbatim).
pub fn is_valid_request_id(id: &str) -> bool {
    !id.is_empty() && id.len() <= 128 && id.bytes().all(|b| b.is_ascii_graphic())
}

/// Generates a server-assigned request id: 32 hex characters (128 random
/// bits) from a process-wide generator seeded once from the wall clock and
/// pid, so concurrent servers in one test process still diverge.
fn generate_request_id() -> String {
    use hdoutlier_rng::{RngCore, SeedableRng, Xoshiro256PlusPlus};
    use std::sync::OnceLock;
    static RNG: OnceLock<Mutex<Xoshiro256PlusPlus>> = OnceLock::new();
    let rng = RNG.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Mutex::new(Xoshiro256PlusPlus::seed_from_u64(
            nanos ^ ((std::process::id() as u64) << 32),
        ))
    });
    let (hi, lo) = {
        let mut rng = rng.lock().expect("request-id rng lock");
        (rng.next_u64(), rng.next_u64())
    };
    format!("{hi:016x}{lo:016x}")
}

/// Shared accept-queue state between the accept thread and the workers.
struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    stop: AtomicBool,
    config: ServerConfig,
    handler: Arc<Handler>,
    stats: Arc<ServerStats>,
}

/// A running HTTP server. [`Server::shutdown`] (or drop) drains and joins.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.worker_handles.len())
            .finish()
    }
}

impl Server {
    /// Binds `addr` (port `0` picks an ephemeral port — read it back from
    /// [`Server::local_addr`]) and starts accepting on a background thread,
    /// handling connections on `config.workers` worker threads.
    ///
    /// # Errors
    /// The bind or thread-spawn failure, untouched.
    pub fn bind(addr: &str, config: ServerConfig, handler: Arc<Handler>) -> std::io::Result<Self> {
        assert!(config.workers >= 1, "server needs at least one worker");
        assert!(
            config.max_requests_per_connection >= 1,
            "a connection must be allowed at least one request"
        );
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            config,
            handler,
            stats: Arc::new(ServerStats::default()),
        });
        let mut worker_handles = Vec::with_capacity(shared.config.workers);
        for n in 0..shared.config.workers {
            let worker_shared = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("net-worker-{n}"))
                    .spawn(move || worker_loop(&worker_shared))?,
            );
        }
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("net-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Server {
            addr: local,
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Lifetime totals (connections, requests, rejections).
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Graceful drain: closes the listener (no new connections), finishes
    /// every in-flight and already-queued request, then joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(accept_handle) = self.accept_handle.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a connection to ourselves. When the
        // listener was bound to a wildcard address, connect via loopback.
        let wake_ip = match self.addr.ip() {
            ip if ip.is_unspecified() && ip.is_ipv4() => IpAddr::V4(Ipv4Addr::LOCALHOST),
            ip if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
            ip => ip,
        };
        let _ = TcpStream::connect_timeout(
            &SocketAddr::new(wake_ip, self.addr.port()),
            Duration::from_secs(2),
        );
        // The accept thread exits first, dropping the listener: the port is
        // closed to new connections *before* in-flight work finishes —
        // exactly the drain ordering the serve e2e asserts.
        let _ = accept_handle.join();
        self.shared.available.notify_all();
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Accepts connections and enqueues them within the budget.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        // Request/response traffic is latency-bound, not bandwidth-bound:
        // leave Nagle off so a response segment never waits for an ACK.
        let _ = stream.set_nodelay(true);
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        let mut queue = shared.queue.lock().expect("queue lock");
        if queue.len() >= shared.config.queue_depth {
            drop(queue);
            // Refuse in-line rather than queueing unboundedly; the write is
            // best-effort (a client that already gave up is not our problem).
            // This runs on the single accept thread, so a stalling rejected
            // peer must never hold it for the full io_timeout — a short
            // dedicated budget keeps accepts moving exactly when the server
            // is already saturated.
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            let refusal_timeout = shared.config.io_timeout.min(REFUSAL_WRITE_TIMEOUT);
            let _ = stream.set_write_timeout(Some(refusal_timeout));
            let _ = write_response(
                &mut stream,
                &Response::text(503, "server is at its connection budget; retry\n")
                    .with_retry_after(shared.config.retry_after),
                false,
                // The head was never read, so there is no client id to echo;
                // a generated one still lets the client pin the refusal to
                // its logs of this connection attempt.
                Some(&generate_request_id()),
            );
            continue;
        }
        queue.push_back(stream);
        drop(queue);
        shared.available.notify_one();
    }
}

/// One worker: pops connections and serves them until stop + empty queue.
fn worker_loop(shared: &Shared) {
    loop {
        let mut queue = shared.queue.lock().expect("queue lock");
        let stream = loop {
            if let Some(stream) = queue.pop_front() {
                break stream;
            }
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            // Timed wait so a notify racing the lock never strands a worker.
            let (guard, _) = shared
                .available
                .wait_timeout(queue, Duration::from_millis(200))
                .expect("queue lock");
            queue = guard;
        };
        drop(queue);
        let mut stream = stream;
        let _ = serve_connection(&mut stream, shared);
    }
}

/// Outcome of reading one request off a connection.
enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Clean EOF before any request byte arrived (keep-alive close).
    Closed,
    /// The request was rejected at the parse level; answer with this
    /// status/message and close the connection. Carries the request id to
    /// echo — the client's own `X-Request-Id` when the headers got far
    /// enough to parse, a generated one otherwise — so rejected requests
    /// stay correlatable in client logs.
    Reject(u16, &'static str, String),
    /// I/O failed (timeout, reset); close silently.
    Io,
}

/// Serves requests on one connection until close/limit/lifetime/stop.
fn serve_connection(stream: &mut TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_write_timeout(Some(shared.config.io_timeout))?;
    let opened = Instant::now();
    let lifetime_over =
        |at: Instant| at.duration_since(opened) >= shared.config.connection_lifetime;
    let mut served = 0usize;
    loop {
        match read_request(stream, &shared.config, opened) {
            ReadOutcome::Request(request) => {
                served += 1;
                let response = (shared.handler)(&request);
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                // Keep-alive only when the client allows it, the per-
                // connection budget and lifetime have room, and the server
                // is not draining.
                let keep_alive = wants_keep_alive(&request)
                    && served < shared.config.max_requests_per_connection
                    && !lifetime_over(Instant::now())
                    && !shared.stop.load(Ordering::SeqCst);
                write_response(stream, &response, keep_alive, Some(&request.request_id))?;
                if !keep_alive {
                    return Ok(());
                }
            }
            ReadOutcome::Closed => return Ok(()),
            ReadOutcome::Reject(status, message, request_id) => {
                if status == 408 {
                    shared
                        .stats
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                } else {
                    shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                }
                let body = format!("{message}\n");
                return write_response(
                    stream,
                    &Response::text(status, body),
                    false,
                    Some(&request_id),
                );
            }
            ReadOutcome::Io => return Ok(()),
        }
    }
}

/// Whether the request's HTTP version + `Connection` header ask for
/// keep-alive (HTTP/1.1 defaults on, HTTP/1.0 defaults off).
fn wants_keep_alive(request: &Request) -> bool {
    let connection = request
        .header("connection")
        .map(str::to_ascii_lowercase)
        .unwrap_or_default();
    if connection.split(',').any(|t| t.trim() == "close") {
        return false;
    }
    if connection.split(',').any(|t| t.trim() == "keep-alive") {
        return true;
    }
    // No Connection header: the version decides.
    !request.http1_0
}

/// How one deadline-bounded read ended.
enum DeadlineRead {
    /// Bytes arrived.
    Bytes(usize),
    /// Clean EOF.
    Eof,
    /// The wall-clock deadline (or one `io_timeout` of total silence)
    /// expired with the read still incomplete.
    Stalled,
    /// A non-timeout I/O failure (reset, shutdown race).
    Failed,
}

/// One read bounded by both the per-read `io_timeout` and an absolute
/// `deadline`: the socket timeout is re-armed to whichever expires first,
/// so a client trickling one byte per read can reset the io_timeout as
/// often as it likes and still runs out of wall clock.
fn read_with_deadline(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    deadline: Instant,
    io_timeout: Duration,
) -> DeadlineRead {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return DeadlineRead::Stalled;
    }
    if stream
        .set_read_timeout(Some(remaining.min(io_timeout)))
        .is_err()
    {
        return DeadlineRead::Failed;
    }
    match stream.read(chunk) {
        Ok(0) => DeadlineRead::Eof,
        Ok(n) => DeadlineRead::Bytes(n),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ) =>
        {
            DeadlineRead::Stalled
        }
        Err(_) => DeadlineRead::Failed,
    }
}

/// Incrementally reads one request (head + optional body) off the stream.
/// Tolerates any packet fragmentation: reads repeat until the head's blank
/// line, then until `Content-Length` bytes of body have arrived — but each
/// phase is bounded by a wall-clock deadline ([`ServerConfig::head_deadline`]
/// from the first head byte, [`ServerConfig::body_deadline`] from the end of
/// the head, both capped by the connection lifetime remaining since
/// `opened`), answering `408` on expiry.
fn read_request(stream: &mut TcpStream, config: &ServerConfig, opened: Instant) -> ReadOutcome {
    let conn_deadline = opened + config.connection_lifetime;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // --- Head: read until CRLFCRLF (or LFLF), bounded in bytes and time.
    // The head deadline arms at the first byte, not at call time, so a
    // connection idling between keep-alive requests spends io_timeout (not
    // head budget) waiting — but once a request starts arriving, it must
    // finish arriving inside the budget no matter how it trickles.
    let mut head_deadline: Option<Instant> = None;
    let head_end = loop {
        if let Some(end) = find_head_end(&buf) {
            break end;
        }
        if buf.len() > config.max_head_bytes {
            return ReadOutcome::Reject(
                431,
                "request head exceeds the configured limit",
                generate_request_id(),
            );
        }
        let deadline = head_deadline.map_or(conn_deadline, |d| d.min(conn_deadline));
        match read_with_deadline(stream, &mut chunk, deadline, config.io_timeout) {
            DeadlineRead::Eof => {
                if buf.is_empty() {
                    return ReadOutcome::Closed;
                }
                return ReadOutcome::Reject(
                    400,
                    "connection closed mid-request-head",
                    generate_request_id(),
                );
            }
            DeadlineRead::Bytes(n) => {
                if head_deadline.is_none() {
                    head_deadline = Some(Instant::now() + config.head_deadline);
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            DeadlineRead::Stalled => {
                // An idle keep-alive connection (no request byte yet) is
                // closed silently; a half-sent head gets the 408.
                return if buf.is_empty() {
                    ReadOutcome::Io
                } else {
                    ReadOutcome::Reject(
                        408,
                        "request head deadline exceeded",
                        generate_request_id(),
                    )
                };
            }
            DeadlineRead::Failed => {
                return if buf.is_empty() {
                    ReadOutcome::Io
                } else {
                    ReadOutcome::Reject(400, "I/O failure mid-request-head", generate_request_id())
                }
            }
        }
    };
    let (head_bytes, rest) = buf.split_at(head_end.text_end);
    let Ok(head) = std::str::from_utf8(head_bytes) else {
        return ReadOutcome::Reject(
            400,
            "request head is not valid UTF-8",
            generate_request_id(),
        );
    };
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ReadOutcome::Reject(400, "malformed request line", generate_request_id());
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return ReadOutcome::Reject(400, "malformed request line", generate_request_id());
    }
    let http1_0 = version == "HTTP/1.0";
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return ReadOutcome::Reject(400, "malformed header line", generate_request_id());
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    let header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    // Settle the request identity as soon as the headers are in: propagate
    // a well-formed client id, assign one otherwise. Every later outcome —
    // including the body-cap rejects below — echoes the same id, so a
    // client can pin a 411/413 straight to the request it sent.
    let request_id = match header("x-request-id") {
        Some(id) if is_valid_request_id(id) => id.to_string(),
        _ => generate_request_id(),
    };
    // --- Body: Content-Length bytes, bounded; chunked is not supported. ---
    if header("transfer-encoding").is_some() {
        return ReadOutcome::Reject(
            411,
            "chunked transfer encoding is not supported; send Content-Length",
            request_id,
        );
    }
    let content_length = match header("content-length") {
        None => 0usize,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return ReadOutcome::Reject(400, "Content-Length is not a number", request_id)
            }
        },
    };
    if content_length > config.max_body_bytes {
        return ReadOutcome::Reject(413, "request body exceeds the configured limit", request_id);
    }
    // A client that sent `Expect: 100-continue` (curl does for large
    // bodies) is waiting for the go-ahead before transmitting the body.
    if header("expect").map(str::to_ascii_lowercase).as_deref() == Some("100-continue")
        && stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n").is_err()
    {
        return ReadOutcome::Io;
    }
    let mut body: Vec<u8> = rest[head_end.skip..].to_vec();
    // The body budget starts once the head is complete: a client that
    // promised Content-Length bytes must deliver them all inside it.
    let body_deadline = (Instant::now() + config.body_deadline).min(conn_deadline);
    while body.len() < content_length {
        match read_with_deadline(stream, &mut chunk, body_deadline, config.io_timeout) {
            DeadlineRead::Eof => {
                return ReadOutcome::Reject(400, "connection closed mid-body", request_id)
            }
            DeadlineRead::Bytes(n) => body.extend_from_slice(&chunk[..n]),
            DeadlineRead::Stalled => {
                return ReadOutcome::Reject(408, "request body deadline exceeded", request_id)
            }
            DeadlineRead::Failed => {
                return ReadOutcome::Reject(400, "I/O failure mid-body", request_id)
            }
        }
    }
    if body.len() > content_length {
        // Pipelined extra bytes are not supported; treat as malformed
        // rather than silently mis-framing the next request.
        return ReadOutcome::Reject(
            400,
            "more body bytes than Content-Length declared",
            request_id,
        );
    }
    ReadOutcome::Request(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
        http1_0,
        request_id,
    })
}

/// Where a request head ends inside a buffer.
struct HeadEnd {
    /// Bytes of head text (request line + headers, without the blank line).
    text_end: usize,
    /// Bytes to skip past `text_end` to reach the body (the blank line).
    skip: usize,
}

/// Finds the head-terminating blank line (`\r\n\r\n`, tolerating `\n\n`).
fn find_head_end(buf: &[u8]) -> Option<HeadEnd> {
    for i in 0..buf.len() {
        if buf[i..].starts_with(b"\r\n\r\n") {
            return Some(HeadEnd {
                text_end: i,
                skip: 4,
            });
        }
        if buf[i..].starts_with(b"\n\n") {
            return Some(HeadEnd {
                text_end: i,
                skip: 2,
            });
        }
    }
    None
}

/// Writes one response with framing headers. `request_id` (when the
/// request parsed far enough to have one) is echoed as `X-Request-Id`;
/// parse-level rejects and budget refusals have no identity to echo.
fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
    request_id: Option<&str>,
) -> std::io::Result<()> {
    let id_header = match request_id {
        Some(id) => format!("X-Request-Id: {id}\r\n"),
        None => String::new(),
    };
    let mut extra = String::new();
    for (name, value) in &response.headers {
        extra.push_str(name);
        extra.push_str(": ");
        extra.push_str(value);
        extra.push_str("\r\n");
    }
    let header = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}{}Connection: {}\r\n\r\n",
        response.status,
        Response::reason(response.status),
        response.content_type,
        response.body.len(),
        id_header,
        extra,
        if keep_alive { "keep-alive" } else { "close" },
    );
    // One write for head + body: two small writes on a Nagle-enabled socket
    // would stall the second behind the peer's delayed ACK (~40ms per
    // response), which dwarfs the scoring work itself.
    let mut frame = Vec::with_capacity(header.len() + response.body.len());
    frame.extend_from_slice(header.as_bytes());
    frame.extend_from_slice(&response.body);
    stream.write_all(&frame)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_is_found_across_both_line_conventions() {
        assert!(find_head_end(b"GET / HTTP/1.1").is_none());
        let end = find_head_end(b"GET / HTTP/1.1\r\n\r\nBODY").unwrap();
        assert_eq!(end.text_end, 14);
        assert_eq!(end.skip, 4);
        let end = find_head_end(b"GET / HTTP/1.1\n\nBODY").unwrap();
        assert_eq!(end.text_end, 14);
        assert_eq!(end.skip, 2);
    }

    #[test]
    fn request_id_validation_rejects_hostile_values() {
        assert!(is_valid_request_id("abc-123_X.Y"));
        assert!(is_valid_request_id(&"x".repeat(128)));
        assert!(!is_valid_request_id(""));
        assert!(!is_valid_request_id(&"x".repeat(129)));
        assert!(!is_valid_request_id("has space"));
        assert!(!is_valid_request_id("line\nfeed"));
        assert!(!is_valid_request_id("nul\0byte"));
        assert!(!is_valid_request_id("smuggle\r\nX-Evil: 1"));
    }

    #[test]
    fn generated_request_ids_are_hex_and_distinct() {
        let a = generate_request_id();
        let b = generate_request_id();
        assert_eq!(a.len(), 32);
        assert!(a.bytes().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, b);
        assert!(is_valid_request_id(&a));
    }

    #[test]
    fn with_header_neutralizes_crlf_injection() {
        // A clean header passes through untouched.
        let r = Response::text(200, "ok").with_header("Retry-After", "3");
        assert_eq!(r.headers, vec![("Retry-After".into(), "3".into())]);
        // A CR/LF smuggled through a client-derived value cannot break the
        // response head into extra headers or a second response.
        let r = Response::text(200, "ok")
            .with_header("X-Echo", "a\r\nX-Evil: 1\r\n\r\nHTTP/1.1 200 OK");
        let (name, value) = &r.headers[0];
        assert_eq!(name, "X-Echo");
        assert!(!value.contains('\r') && !value.contains('\n'), "{value:?}");
        assert_eq!(value, "a  X-Evil: 1    HTTP/1.1 200 OK");
        // Hostile names are neutralized the same way.
        let r = Response::text(200, "ok").with_header("X\r\nX-Evil", "v");
        assert_eq!(r.headers[0].0, "X  X-Evil");
    }

    #[test]
    fn response_constructors_and_reasons() {
        let r = Response::json(201, "{}");
        assert_eq!(r.status, 201);
        assert_eq!(r.content_type, "application/json");
        assert_eq!(Response::reason(404), "Not Found");
        assert_eq!(Response::reason(413), "Payload Too Large");
        assert_eq!(Response::reason(777), "Response");
        let r = Response::ndjson(200, "{}\n");
        assert_eq!(r.content_type, "application/x-ndjson");
        let r = Response::text(503, "busy");
        assert_eq!(r.body, b"busy");
    }
}
