//! Edge-case coverage for the client retry discipline: `parse_retry_after`
//! on degenerate header values, and `Backoff`'s determinism-by-seed and
//! floor/ceiling guarantees under server hints.

use hdoutlier_net::retry::{parse_retry_after, Backoff, RetryPolicy};
use std::time::Duration;

#[test]
fn parse_retry_after_missing_or_empty_value() {
    assert_eq!(parse_retry_after(""), None);
    assert_eq!(parse_retry_after("   "), None);
    assert_eq!(parse_retry_after("\t\r\n"), None);
}

#[test]
fn parse_retry_after_zero_is_a_valid_hint() {
    // "Retry-After: 0" means "come back whenever" — a zero floor, not an
    // invalid header. The backoff's own jitter still applies.
    assert_eq!(parse_retry_after("0"), Some(Duration::ZERO));
    assert_eq!(parse_retry_after(" 0 "), Some(Duration::ZERO));
}

#[test]
fn parse_retry_after_huge_values() {
    // The largest value that fits u64 seconds parses; one past it is
    // rejected rather than wrapping.
    let max = u64::MAX.to_string();
    assert_eq!(parse_retry_after(&max), Some(Duration::from_secs(u64::MAX)));
    assert_eq!(parse_retry_after("18446744073709551616"), None);
    assert_eq!(parse_retry_after(&"9".repeat(100)), None);
}

#[test]
fn parse_retry_after_non_numeric_forms() {
    assert_eq!(parse_retry_after("soon"), None);
    assert_eq!(parse_retry_after("1.5"), None, "fractional seconds");
    assert_eq!(parse_retry_after("-3"), None, "negative");
    assert_eq!(parse_retry_after("1 0"), None, "internal whitespace");
    assert_eq!(parse_retry_after("10s"), None, "unit suffix");
    assert_eq!(parse_retry_after("0x10"), None, "hex");
    assert_eq!(
        parse_retry_after("Wed, 21 Oct 2015 07:28:00 GMT"),
        None,
        "HTTP-date form is not supported"
    );
}

fn tight_policy() -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(20),
        cap: Duration::from_millis(250),
        max_retries: 16,
    }
}

#[test]
fn same_seed_same_schedule_even_with_hints() {
    // Determinism must survive interleaved server hints, because a hint
    // only floors the returned value — it must not consume extra RNG draws.
    let hints = [
        None,
        Some(Duration::from_millis(5)),
        None,
        Some(Duration::from_secs(1)),
        None,
    ];
    let mut a = Backoff::new(tight_policy(), 77);
    let mut b = Backoff::new(tight_policy(), 77);
    for hint in hints {
        assert_eq!(a.next_delay(hint), b.next_delay(hint));
    }
    // And replaying without hints still matches a hint-free twin from here.
    let rest_a: Vec<_> = std::iter::from_fn(|| a.next_delay(None)).collect();
    let rest_b: Vec<_> = std::iter::from_fn(|| b.next_delay(None)).collect();
    assert_eq!(rest_a, rest_b);
}

#[test]
fn different_seeds_decorrelate() {
    let schedules: Vec<Vec<Duration>> = (0..4u64)
        .map(|seed| {
            let mut backoff = Backoff::new(tight_policy(), seed);
            std::iter::from_fn(|| backoff.next_delay(None)).collect()
        })
        .collect();
    let distinct: std::collections::HashSet<_> = schedules.iter().collect();
    assert!(distinct.len() > 1, "all seeds produced one schedule");
}

#[test]
fn every_delay_respects_base_floor_and_cap_ceiling() {
    for seed in 0..32u64 {
        let policy = tight_policy();
        let mut backoff = Backoff::new(policy.clone(), seed);
        let mut count = 0;
        while let Some(delay) = backoff.next_delay(None) {
            assert!(delay >= policy.base, "seed {seed}: {delay:?} under base");
            assert!(delay <= policy.cap, "seed {seed}: {delay:?} over cap");
            count += 1;
        }
        assert_eq!(count, policy.max_retries);
    }
}

#[test]
fn server_hint_floors_but_never_shortens() {
    let mut backoff = Backoff::new(tight_policy(), 5);
    // A hint above the cap wins outright.
    let delay = backoff.next_delay(Some(Duration::from_secs(3))).unwrap();
    assert!(delay >= Duration::from_secs(3));
    // A zero hint is identical to no hint: jitter still floors at base.
    let delay = backoff.next_delay(parse_retry_after("0")).unwrap();
    assert!(delay >= tight_policy().base);
    assert!(delay <= tight_policy().cap);
}

#[test]
fn exhaustion_ignores_hints() {
    let mut backoff = Backoff::new(
        RetryPolicy {
            max_retries: 1,
            ..tight_policy()
        },
        3,
    );
    assert_eq!(backoff.retries_left(), 1);
    assert!(backoff.next_delay(None).is_some());
    assert_eq!(backoff.retries_left(), 0);
    // Even an explicit server invitation cannot reopen a spent budget.
    assert!(backoff.next_delay(Some(Duration::from_secs(1))).is_none());
}
