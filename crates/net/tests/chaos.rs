//! Deterministic network chaos harness: scripted fault clients thrown at
//! one small server, concurrently and in sequence, asserting the two
//! invariants that matter under hostility — no worker is ever pinned past
//! its wall-clock deadline, and the server keeps serving well-behaved
//! traffic correctly all the way through.
//!
//! The faults are scripts, not randomness: stalled request heads, torn
//! mid-body writes, disconnects before the response is read, and a burst
//! flood past the connection budget. Each script is a function a test can
//! compose; the storm test runs them all against a 2-worker server.

use hdoutlier_net::{Request, Response, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A tight-deadline config so every fault resolves in well under a second.
fn chaos_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_depth: 4,
        io_timeout: Duration::from_millis(200),
        head_deadline: Duration::from_millis(400),
        body_deadline: Duration::from_millis(400),
        connection_lifetime: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

fn echo_server(config: ServerConfig) -> Server {
    Server::bind(
        "127.0.0.1:0",
        config,
        Arc::new(|request: &Request| {
            Response::text(
                200,
                format!(
                    "{} {} body={}",
                    request.method,
                    request.path,
                    request.body.len()
                ),
            )
        }),
    )
    .expect("bind")
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// Reads one response's status code, tolerating connection failures (a
/// fault client often has its socket reset under it). `None` = no parse.
fn try_read_status(stream: &mut TcpStream) -> Option<u16> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while !buf.ends_with(b"\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => buf.push(byte[0]),
            _ => return None,
        }
        if buf.len() > 256 {
            return None;
        }
    }
    std::str::from_utf8(&buf)
        .ok()?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Fault script: opens a connection, sends a partial head, and stalls
/// until the server expires it. Returns the status it saw (408 when the
/// response survived the fault).
fn stalled_head_client(server: &Server) -> Option<u16> {
    let mut stream = connect(server);
    stream.write_all(b"GET /stall HTTP/1.1\r\nX-Par").ok()?;
    try_read_status(&mut stream)
}

/// Fault script: promises a body, writes half of it, and signals EOF with
/// the write half torn off — the read half stays open for the verdict.
fn torn_body_client(server: &Server) -> Option<u16> {
    let mut stream = connect(server);
    stream
        .write_all(b"POST /torn HTTP/1.1\r\nContent-Length: 32\r\n\r\nonly-half-arrives")
        .ok()?;
    stream.shutdown(std::net::Shutdown::Write).ok()?;
    try_read_status(&mut stream)
}

/// Fault script: sends a complete request and disconnects without reading
/// the response — the server's write lands on a dead socket.
fn vanishing_client(server: &Server) {
    let mut stream = connect(server);
    let _ = stream.write_all(b"GET /vanish HTTP/1.1\r\nConnection: close\r\n\r\n");
    // Drop without reading: the response write hits a closing socket.
}

/// A well-behaved request on a fresh connection; the recovery probe.
fn polite_client(server: &Server) -> Option<u16> {
    let mut stream = connect(server);
    stream
        .write_all(b"GET /polite HTTP/1.1\r\nConnection: close\r\n\r\n")
        .ok()?;
    try_read_status(&mut stream)
}

#[test]
fn stalled_heads_expire_and_report_408() {
    let server = echo_server(chaos_config());
    let start = Instant::now();
    assert_eq!(stalled_head_client(&server), Some(408));
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "stalled head held a worker for {:?}",
        start.elapsed()
    );
}

#[test]
fn torn_body_writes_get_a_400_not_a_hang() {
    let server = echo_server(chaos_config());
    let start = Instant::now();
    assert_eq!(torn_body_client(&server), Some(400));
    assert!(start.elapsed() < Duration::from_secs(2));
}

#[test]
fn burst_flood_past_the_budget_sheds_with_retry_after_and_recovers() {
    // More simultaneous connections than workers + accept queue + budget:
    // the overflow is refused 503 with a Retry-After hint, and once the
    // burst passes the server serves normally again.
    let server = echo_server(chaos_config());
    let addr = server.local_addr();
    let clients: Vec<_> = (0..16)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = match TcpStream::connect(addr) {
                    Ok(s) => s,
                    Err(_) => return None, // kernel backlog overflow: also fine
                };
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                stream
                    .write_all(b"GET /flood HTTP/1.1\r\nConnection: close\r\n\r\n")
                    .ok()?;
                let mut head = Vec::new();
                let mut byte = [0u8; 1];
                while !head.ends_with(b"\r\n\r\n") && head.len() < 4096 {
                    match stream.read(&mut byte) {
                        Ok(1) => head.push(byte[0]),
                        _ => return None,
                    }
                }
                Some(String::from_utf8_lossy(&head).into_owned())
            })
        })
        .collect();
    let mut served = 0usize;
    let mut shed = 0usize;
    for client in clients {
        match client.join().expect("client thread") {
            Some(head) if head.starts_with("HTTP/1.1 200") => served += 1,
            Some(head) if head.starts_with("HTTP/1.1 503") => {
                assert!(
                    head.to_ascii_lowercase().contains("retry-after:"),
                    "refusals must teach clients to back off: {head}"
                );
                shed += 1;
            }
            Some(head) => panic!("unexpected response under flood: {head}"),
            None => {} // reset under pressure: an acceptable shed too
        }
    }
    assert!(served > 0, "the flood starved every polite request");
    // With 16 clients against a budget of workers + queue = 6, the kernel
    // or the server must have turned some away (503 or reset); the exact
    // split is scheduling-dependent, the invariant is no hang and no bogus
    // status.
    let _ = shed;
    // Recovery: the storm is over, a fresh request is served immediately.
    assert_eq!(polite_client(&server), Some(200));
}

#[test]
fn mixed_fault_storm_never_pins_workers_and_recovers_to_healthy() {
    // The storm: every fault script at once, twice over, against two
    // workers — then the recovery probe must still see a prompt 200.
    let server = Arc::new(echo_server(chaos_config()));
    let start = Instant::now();
    let mut storms = Vec::new();
    for _ in 0..2 {
        let s = Arc::clone(&server);
        storms.push(std::thread::spawn(move || {
            let _ = stalled_head_client(&s);
        }));
        let s = Arc::clone(&server);
        storms.push(std::thread::spawn(move || {
            let _ = torn_body_client(&s);
        }));
        let s = Arc::clone(&server);
        storms.push(std::thread::spawn(move || vanishing_client(&s)));
    }
    for storm in storms {
        storm.join().expect("fault client");
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "fault storm outlived every deadline: {:?}",
        start.elapsed()
    );
    // Both workers are free; correct service resumes at once.
    assert_eq!(polite_client(&server), Some(200));
    assert_eq!(polite_client(&server), Some(200));
}
