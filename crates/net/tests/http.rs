//! Wire-level tests for the HTTP server: fragmentation tolerance, bounded
//! heads and bodies, keep-alive semantics, the connection budget, and the
//! drain race (a slow in-flight request finishing while shutdown runs).
//!
//! Everything here talks raw TCP — no client library — because the edge
//! cases under test (split reads, oversized declarations, malformed lines)
//! are exactly the ones a well-behaved client would never send.

use hdoutlier_net::{Request, Response, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An echo server: responds with `method path` and the body length, so
/// assertions can see exactly what was parsed.
fn echo_server(config: ServerConfig) -> Server {
    Server::bind(
        "127.0.0.1:0",
        config,
        Arc::new(|request: &Request| {
            Response::text(
                200,
                format!(
                    "{} {} body={}",
                    request.method,
                    request.path,
                    request.body.len()
                ),
            )
        }),
    )
    .expect("bind")
}

/// One parsed client-side response: status line, headers, body.
struct ClientResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl ClientResponse {
    fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    fn body_text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("utf8 body")
    }
}

/// Reads exactly one framed response off the stream (Content-Length based,
/// which is how this server always frames), leaving the connection usable
/// for the next request.
fn read_response(stream: &mut TcpStream) -> ClientResponse {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    // Read the head byte-by-byte until the blank line; fine for tests.
    while !buf.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).expect("head read"), 1, "early EOF");
        buf.push(byte[0]);
    }
    let head = String::from_utf8(buf).expect("utf8 head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .filter(|l| !l.is_empty())
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse().expect("numeric length"))
        .unwrap_or(0);
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("body read");
    ClientResponse {
        status,
        headers,
        body,
    }
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

#[test]
fn requests_survive_any_fragmentation() {
    let server = echo_server(ServerConfig::default());
    let request = b"POST /sessions/a/score HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\nConnection: close\r\n\r\nhello world";
    // Split the byte stream at every position in turn, with a pause between
    // the halves, so head/body boundaries land mid-token, mid-CRLF, and
    // mid-body. The parser must reassemble every variant identically.
    for split in [1, 17, 33, request.len() - 12, request.len() - 1] {
        let mut stream = connect(&server);
        stream.write_all(&request[..split]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        stream.write_all(&request[split..]).unwrap();
        let response = read_response(&mut stream);
        assert_eq!(response.status, 200, "split at {split}");
        assert_eq!(
            response.body_text(),
            "POST /sessions/a/score body=11",
            "split at {split}"
        );
    }
    // Absurdly fragmented: one byte at a time.
    let mut stream = connect(&server);
    for &b in request.iter() {
        stream.write_all(&[b]).unwrap();
    }
    let response = read_response(&mut stream);
    assert_eq!(response.status, 200);
    server.shutdown();
}

#[test]
fn oversized_bodies_get_413_and_oversized_heads_431() {
    let config = ServerConfig {
        max_body_bytes: 64,
        max_head_bytes: 256,
        ..ServerConfig::default()
    };
    let server = echo_server(config);

    // Declared body beyond the cap: refused up front, connection closed.
    let mut stream = connect(&server);
    stream
        .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 65\r\n\r\n")
        .unwrap();
    let response = read_response(&mut stream);
    assert_eq!(response.status, 413);

    // At the cap: accepted.
    let mut stream = connect(&server);
    let body = vec![b'y'; 64];
    stream
        .write_all(format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len()).as_bytes())
        .unwrap();
    stream.write_all(&body).unwrap();
    assert_eq!(read_response(&mut stream).status, 200);

    // A head that never ends within the cap: 431. Sent as ONE write, sized
    // just past the cap: the server consumes every byte before rejecting,
    // so its close is a clean FIN — writing more after the server has
    // already closed would race an EPIPE/RST against reading the response.
    let mut stream = connect(&server);
    let head = format!("GET /x HTTP/1.1\r\nX-Padding: {}\r\n", "p".repeat(260));
    stream.write_all(head.as_bytes()).unwrap();
    let response = read_response(&mut stream);
    assert_eq!(response.status, 431);

    assert_eq!(server.stats().bad_requests.load(Ordering::Relaxed), 2);
    server.shutdown();
}

#[test]
fn malformed_requests_get_400_and_chunked_gets_411() {
    let server = echo_server(ServerConfig::default());
    // (raw request bytes, expected status)
    let cases: [(&[u8], u16); 5] = [
        (b"NONSENSE\r\n\r\n", 400),                       // no path/version
        (b"GET /x SMTP/3\r\n\r\n", 400),                  // not HTTP
        (b"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n", 400), // malformed header
        (b"POST /x HTTP/1.1\r\nContent-Length: twelve\r\n\r\n", 400), // bad length
        (
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            411,
        ), // unsupported framing
    ];
    for (raw, expected) in cases {
        let mut stream = connect(&server);
        stream.write_all(raw).unwrap();
        let response = read_response(&mut stream);
        assert_eq!(
            response.status,
            expected,
            "request {:?}",
            String::from_utf8_lossy(raw)
        );
    }
    server.shutdown();
}

#[test]
fn early_rejects_echo_request_ids() {
    let config = ServerConfig {
        max_body_bytes: 64,
        max_head_bytes: 256,
        ..ServerConfig::default()
    };
    let server = echo_server(config);

    // Rejects decided after the headers parse echo the client's own id:
    // the 413 body cap, the 411 unsupported framing, and a body-framing 400.
    let echoed: [(&str, u16); 3] = [
        (
            "POST /x HTTP/1.1\r\nX-Request-Id: req-413\r\nContent-Length: 65\r\n\r\n",
            413,
        ),
        (
            "POST /x HTTP/1.1\r\nX-Request-Id: req-411\r\nTransfer-Encoding: chunked\r\n\r\n",
            411,
        ),
        (
            "POST /x HTTP/1.1\r\nX-Request-Id: req-400\r\nContent-Length: twelve\r\n\r\n",
            400,
        ),
    ];
    for (raw, expected) in echoed {
        let mut stream = connect(&server);
        stream.write_all(raw.as_bytes()).unwrap();
        let response = read_response(&mut stream);
        assert_eq!(response.status, expected, "request {raw:?}");
        assert_eq!(
            response.header("x-request-id"),
            Some(format!("req-{expected}").as_str()),
            "a {expected} should echo the client's X-Request-Id"
        );
    }

    // A 431 rejects before the head parses, so the client id is
    // unreachable — but the response still carries a generated one.
    let mut stream = connect(&server);
    let head = format!(
        "GET /x HTTP/1.1\r\nX-Request-Id: req-431\r\nX-Padding: {}\r\n",
        "p".repeat(260)
    );
    stream.write_all(head.as_bytes()).unwrap();
    let response = read_response(&mut stream);
    assert_eq!(response.status, 431);
    let id = response.header("x-request-id").expect("431 carries an id");
    assert!(!id.is_empty());
    assert_ne!(id, "req-431", "unparsed heads cannot echo the client id");
    server.shutdown();
}

#[test]
fn keep_alive_reuses_and_close_closes() {
    let server = echo_server(ServerConfig::default());

    // HTTP/1.1 default: keep-alive. Three requests over one connection.
    let mut stream = connect(&server);
    for n in 0..3 {
        stream
            .write_all(format!("GET /req{n} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let response = read_response(&mut stream);
        assert_eq!(response.status, 200);
        assert_eq!(response.body_text(), format!("GET /req{n} body=0"));
        assert_eq!(response.header("connection"), Some("keep-alive"));
    }
    let connections_so_far = server.stats().connections.load(Ordering::Relaxed);
    assert_eq!(connections_so_far, 1, "one connection served all three");

    // Connection: close is honored — the server answers then hangs up.
    let mut stream = connect(&server);
    stream
        .write_all(b"GET /bye HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let response = read_response(&mut stream);
    assert_eq!(response.header("connection"), Some("close"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty());

    // HTTP/1.0 defaults to close...
    let mut stream = connect(&server);
    stream.write_all(b"GET /old HTTP/1.0\r\n\r\n").unwrap();
    let response = read_response(&mut stream);
    assert_eq!(response.header("connection"), Some("close"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty());

    // ...unless it asks for keep-alive explicitly.
    let mut stream = connect(&server);
    stream
        .write_all(b"GET /old HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        .unwrap();
    let response = read_response(&mut stream);
    assert_eq!(response.header("connection"), Some("keep-alive"));
    stream.write_all(b"GET /old2 HTTP/1.0\r\n\r\n").unwrap();
    assert_eq!(read_response(&mut stream).status, 200);

    server.shutdown();
}

#[test]
fn per_connection_request_cap_closes_after_limit() {
    let config = ServerConfig {
        max_requests_per_connection: 2,
        ..ServerConfig::default()
    };
    let server = echo_server(config);
    let mut stream = connect(&server);
    stream.write_all(b"GET /a HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(
        read_response(&mut stream).header("connection"),
        Some("keep-alive")
    );
    stream.write_all(b"GET /b HTTP/1.1\r\n\r\n").unwrap();
    // Second request hits the cap: announced close, then EOF.
    assert_eq!(
        read_response(&mut stream).header("connection"),
        Some("close")
    );
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty());
    server.shutdown();
}

#[test]
fn connection_budget_refuses_with_503() {
    // One worker, one queue slot, and a handler that blocks until released:
    // the third concurrent connection must be refused inline with 503.
    let gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let entered = Arc::new(AtomicU64::new(0));
    let handler_gate = Arc::clone(&gate);
    let handler_entered = Arc::clone(&entered);
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        },
        Arc::new(move |_request: &Request| {
            handler_entered.fetch_add(1, Ordering::SeqCst);
            let (lock, cvar) = &*handler_gate;
            let mut released = lock.lock().unwrap();
            while !*released {
                released = cvar.wait(released).unwrap();
            }
            Response::text(200, "finally")
        }),
    )
    .expect("bind");

    // If an assertion below fails with the gate still closed, the worker
    // would block in the handler forever and `Server::drop` would never
    // join it — so the gate opens on unwind, not just on the happy path.
    struct OpenOnDrop(Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>);
    impl Drop for OpenOnDrop {
        fn drop(&mut self) {
            let (lock, cvar) = &*self.0;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
        }
    }
    let opener = OpenOnDrop(Arc::clone(&gate));

    // First connection occupies the worker. `Connection: close` everywhere
    // so the worker moves on the moment a response is written instead of
    // lingering in a keep-alive read. Wait until the handler is actually
    // entered: only then is the first connection out of the queue, so the
    // second lands in the queue slot rather than racing for a 503.
    let mut blocked = connect(&server);
    blocked
        .write_all(b"GET /slow HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    while entered.load(Ordering::SeqCst) == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    // ...second sits in the queue...
    let mut queued = connect(&server);
    queued
        .write_all(b"GET /queued HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    // Give the accept thread time to enqueue it.
    std::thread::sleep(Duration::from_millis(100));
    // ...third is over budget: 503, immediately, from the accept thread.
    let mut refused = connect(&server);
    refused.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let response = read_response(&mut refused);
    assert_eq!(response.status, 503);
    // Even the inline refusal carries a request id (generated — the head
    // was never read), so the client can pin the 503 to this attempt.
    assert!(
        response
            .header("x-request-id")
            .is_some_and(|v| !v.is_empty()),
        "503 should carry X-Request-Id"
    );

    // Release the gate: the blocked and queued requests now finish.
    drop(opener);
    assert_eq!(read_response(&mut blocked).status, 200);
    assert_eq!(read_response(&mut queued).status, 200);
    assert_eq!(server.stats().rejected.load(Ordering::Relaxed), 1);
    server.shutdown();
}

#[test]
fn expect_100_continue_is_answered() {
    let server = echo_server(ServerConfig::default());
    let mut stream = connect(&server);
    stream
        .write_all(b"POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 5\r\n\r\n")
        .unwrap();
    // The interim 100 must arrive before we send the body.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).unwrap(), 1);
        head.push(byte[0]);
    }
    assert!(
        head.starts_with(b"HTTP/1.1 100"),
        "{}",
        String::from_utf8_lossy(&head)
    );
    stream.write_all(b"hello").unwrap();
    let response = read_response(&mut stream);
    assert_eq!(response.status, 200);
    assert_eq!(response.body_text(), "POST /x body=5");
    server.shutdown();
}

#[test]
fn slow_in_flight_request_completes_while_drain_proceeds() {
    // The scrape-during-drain race: a request is mid-handler when shutdown
    // starts. The drain must (a) close the listener to new connections and
    // (b) still deliver the in-flight response in full.
    let entered = Arc::new(AtomicU64::new(0));
    let handler_entered = Arc::clone(&entered);
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        Arc::new(move |_request: &Request| {
            handler_entered.fetch_add(1, Ordering::SeqCst);
            // Slow enough that shutdown certainly overlaps.
            std::thread::sleep(Duration::from_millis(300));
            Response::text(200, "made it through the drain")
        }),
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut in_flight = connect(&server);
    in_flight
        .write_all(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    // Wait until the handler is actually running, then drain concurrently.
    while entered.load(Ordering::SeqCst) == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let drainer = std::thread::spawn(move || server.shutdown());

    // The in-flight response arrives complete despite the ongoing drain.
    let response = read_response(&mut in_flight);
    assert_eq!(response.status, 200);
    assert_eq!(response.body_text(), "made it through the drain");

    drainer.join().expect("drain finishes");
    // After the drain, the port is closed: connects are refused (or reset),
    // never accepted-and-ignored.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener must be closed after shutdown"
    );
}

#[test]
fn stop_flag_forces_close_on_kept_alive_connections() {
    // A kept-alive connection that is idle when the drain starts must not
    // hold the shutdown hostage for the full io_timeout window.
    let server = echo_server(ServerConfig {
        io_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let mut stream = connect(&server);
    stream.write_all(b"GET /a HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(read_response(&mut stream).status, 200);
    // Connection now idles in read_request. Shutdown must return promptly
    // (bounded by the io_timeout, not hang forever).
    let start = std::time::Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "drain took {:?}",
        start.elapsed()
    );
}

#[test]
fn stalled_head_gets_408_and_connection_close() {
    // A client that starts a request head and then goes silent: the
    // stalled read expires it with 408 rather than holding the worker for
    // an unbounded sequence of per-read timeouts.
    let server = echo_server(ServerConfig {
        io_timeout: Duration::from_millis(200),
        head_deadline: Duration::from_millis(600),
        ..ServerConfig::default()
    });
    let mut stream = connect(&server);
    stream.write_all(b"GET /slow HTTP/1.1\r\nHos").unwrap();
    let start = std::time::Instant::now();
    let response = read_response(&mut stream);
    assert_eq!(response.status, 408);
    assert_eq!(response.header("connection"), Some("close"));
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "worker held for {:?}",
        start.elapsed()
    );
}

#[test]
fn one_byte_per_tick_head_trickle_cannot_outlive_the_head_deadline() {
    // The slowloris defense proper: each byte lands inside the per-read
    // io_timeout (so the old per-read logic alone would wait forever), but
    // the wall-clock head deadline ends the request anyway.
    let server = echo_server(ServerConfig {
        io_timeout: Duration::from_millis(400),
        head_deadline: Duration::from_millis(500),
        workers: 1,
        ..ServerConfig::default()
    });
    let mut stream = connect(&server);
    let head = b"GET /trickle HTTP/1.1\r\nHost: x\r\nX-Filler: aaaaaaaaaa\r\n\r\n";
    let start = std::time::Instant::now();
    // Trickle for well past the deadline; once the server expires the
    // request the writes start failing (or the later read sees the 408) —
    // both are acceptable client-side views of the same server decision.
    for &b in head.iter() {
        if stream
            .write_all(&[b])
            .and_then(|()| stream.flush())
            .is_err()
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
        if start.elapsed() > Duration::from_millis(1200) {
            break;
        }
    }
    // Whatever the trickle's fate, the single worker must be free again:
    // a well-behaved request on a fresh connection gets served promptly.
    let mut fresh = connect(&server);
    fresh
        .write_all(b"GET /after HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let response = read_response(&mut fresh);
    assert_eq!(response.status, 200);
    assert_eq!(response.body_text(), "GET /after body=0");
}

#[test]
fn body_stall_after_content_length_promise_gets_408() {
    // The head arrives promptly, promises 64 body bytes, delivers 10, and
    // stalls. The body deadline frees the worker with a 408.
    let server = echo_server(ServerConfig {
        io_timeout: Duration::from_millis(200),
        body_deadline: Duration::from_millis(500),
        ..ServerConfig::default()
    });
    let mut stream = connect(&server);
    stream
        .write_all(b"POST /stall HTTP/1.1\r\nContent-Length: 64\r\n\r\n0123456789")
        .unwrap();
    let start = std::time::Instant::now();
    let response = read_response(&mut stream);
    assert_eq!(response.status, 408);
    assert_eq!(response.header("connection"), Some("close"));
    assert!(
        response.body_text().contains("body deadline"),
        "{}",
        response.body_text()
    );
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "worker held for {:?}",
        start.elapsed()
    );
}

#[test]
fn client_disconnect_mid_request_frees_the_worker() {
    // A client that promises a body and vanishes entirely (FIN, not a
    // stall) must not pin the single worker either.
    let server = echo_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    {
        let mut dead = connect(&server);
        dead.write_all(b"POST /gone HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial")
            .unwrap();
        // Dropping closes the socket: the server sees EOF mid-body.
    }
    let mut fresh = connect(&server);
    fresh
        .write_all(b"GET /next HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    assert_eq!(read_response(&mut fresh).status, 200);
}

#[test]
fn connection_lifetime_caps_keep_alive_reuse() {
    // Keep-alive works freely inside the lifetime; once the cap passes,
    // the server closes instead of parking another read cycle on the
    // connection.
    let server = echo_server(ServerConfig {
        io_timeout: Duration::from_secs(5),
        connection_lifetime: Duration::from_millis(400),
        ..ServerConfig::default()
    });
    let mut stream = connect(&server);
    stream.write_all(b"GET /a HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(read_response(&mut stream).status, 200);
    stream.write_all(b"GET /b HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(read_response(&mut stream).status, 200);

    // Outlive the connection budget, then try a third request: the server
    // has closed (or closes on sight) rather than serving it.
    std::thread::sleep(Duration::from_millis(600));
    let _ = stream.write_all(b"GET /c HTTP/1.1\r\n\r\n");
    let mut byte = [0u8; 1];
    match stream.read(&mut byte) {
        Ok(0) => {}  // clean EOF: the lifetime cap closed the socket
        Err(_) => {} // reset: same decision seen later
        Ok(_) => panic!("request served past the connection lifetime"),
    }
}
