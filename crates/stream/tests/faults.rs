//! Fault-injection tests for checkpoint durability: a process killed at any
//! point of the save protocol must leave a loadable checkpoint behind, and
//! corrupted files must be rejected loudly rather than restored quietly.

use hdoutlier_core::{FittedModel, OutlierDetector, SearchMethod};
use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_stream::checkpoint::{corrupt_path, grid_fingerprint, prev_path, staging_path};
use hdoutlier_stream::{Checkpoint, CheckpointError, OnlineScorer, RecoveredFrom};
use std::path::PathBuf;

fn fitted(seed: u64) -> (FittedModel, hdoutlier_data::Dataset) {
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 800,
        n_dims: 5,
        n_outliers: 3,
        strong_groups: Some(2),
        seed,
        ..PlantedConfig::default()
    });
    let model = OutlierDetector::builder()
        .phi(4)
        .k(2)
        .m(5)
        .search(SearchMethod::BruteForce)
        .build()
        .fit(&planted.dataset)
        .unwrap();
    (model, planted.dataset)
}

fn scorer_at(model: &FittedModel, ds: &hdoutlier_data::Dataset, upto: usize) -> OnlineScorer {
    let mut scorer = OnlineScorer::new(model.clone()).unwrap();
    for i in 0..upto {
        scorer.score_record(ds.row(i)).unwrap();
    }
    scorer
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hdoutlier-stream-faults");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The kill window: the process dies after writing the staging file but
/// before the rename. The destination must still hold the previous
/// checkpoint, and the next save must recover.
#[test]
fn kill_between_staging_write_and_rename_preserves_previous_checkpoint() {
    let (model, ds) = fitted(41);
    let path = temp_path("kill-window.ckpt.json");
    let _ = std::fs::remove_file(&path);

    let cp1 = Checkpoint::capture(&scorer_at(&model, &ds, 100), 0, 0);
    cp1.save_atomic(&path).unwrap();

    // Simulate a kill mid-way through the *next* save: a torn staging file
    // exists, the rename never happened.
    let cp2 = Checkpoint::capture(&scorer_at(&model, &ds, 200), 5, 0);
    let torn = &cp2.to_json().unwrap().render()[..40];
    std::fs::write(staging_path(&path), torn).unwrap();

    // Resume after the crash: the destination still loads as cp1.
    let loaded = Checkpoint::load(&path).unwrap();
    assert_eq!(loaded, cp1);
    assert_eq!(loaded.records_scored, 100);

    // The recovering process checkpoints again: the stale staging file is
    // overwritten, the rename lands, and cp2 becomes the durable state.
    cp2.save_atomic(&path).unwrap();
    assert!(!staging_path(&path).exists());
    assert_eq!(Checkpoint::load(&path).unwrap(), cp2);
}

/// A kill during the very first save: no destination yet, only a torn
/// staging file. Loading fails as Io (file not found), not a panic, and the
/// torn staging file is never picked up.
#[test]
fn kill_during_first_save_leaves_no_checkpoint_not_a_torn_one() {
    let (model, ds) = fitted(43);
    let path = temp_path("first-save.ckpt.json");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(staging_path(&path));

    let cp = Checkpoint::capture(&scorer_at(&model, &ds, 50), 0, 0);
    std::fs::write(staging_path(&path), &cp.to_json().unwrap().render()[..25]).unwrap();

    let err = Checkpoint::load(&path).unwrap_err();
    assert!(matches!(err, CheckpointError::Io(_)), "{err}");
}

/// Corruption on disk (bit rot, manual edits, torn writes on non-atomic
/// filesystems) is rejected with a parse/schema error, never silently
/// restored.
#[test]
fn corrupted_checkpoints_are_rejected_not_restored() {
    let (model, ds) = fitted(47);
    let path = temp_path("corrupt.ckpt.json");
    let cp = Checkpoint::capture(&scorer_at(&model, &ds, 150), 0, 0);
    cp.save_atomic(&path).unwrap();
    let good = std::fs::read_to_string(&path).unwrap();

    // Truncation (torn write) → JSON error.
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    assert!(matches!(
        Checkpoint::load(&path).unwrap_err(),
        CheckpointError::Json(_)
    ));

    // Valid JSON, wrong shape → schema error.
    std::fs::write(&path, "{\"format\": 1}").unwrap();
    assert!(matches!(
        Checkpoint::load(&path).unwrap_err(),
        CheckpointError::Schema(_)
    ));

    // Flipped drift count (negative) → schema error, not a bogus resume.
    std::fs::write(
        &path,
        good.replace("\"records_scored\": 150", "\"records_scored\": -150"),
    )
    .unwrap();
    assert!(matches!(
        Checkpoint::load(&path).unwrap_err(),
        CheckpointError::Schema(_)
    ));
}

/// A checkpoint from one model must not restore into a scorer wrapping a
/// grid with even a single boundary changed.
#[test]
fn single_boundary_difference_changes_the_fingerprint() {
    let (model, ds) = fitted(53);
    let fp = grid_fingerprint(&model);

    // Re-fit on a one-row-shorter dataset: same shape, slightly different
    // equi-depth boundaries.
    let shorter = hdoutlier_data::Dataset::from_rows(
        (0..ds.n_rows() - 1).map(|i| ds.row(i).to_vec()).collect(),
    )
    .unwrap();
    let other = OutlierDetector::builder()
        .phi(4)
        .k(2)
        .m(5)
        .search(SearchMethod::BruteForce)
        .build()
        .fit(&shorter)
        .unwrap();
    assert_ne!(fp, grid_fingerprint(&other));

    let cp = Checkpoint::capture(&scorer_at(&model, &ds, 60), 0, 0);
    let mut scorer = OnlineScorer::new(other).unwrap();
    let err = cp.restore(&mut scorer).unwrap_err();
    assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    // The failed restore left the scorer untouched.
    assert_eq!(scorer.records_scored(), 0);
}

/// Every save rotates the previous generation to `<path>.prev` — the
/// recovery fallback always holds the last good state, one save behind.
#[test]
fn save_atomic_rotates_the_previous_generation() {
    let (model, ds) = fitted(61);
    let path = temp_path("rotate.ckpt.json");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(prev_path(&path));

    let gen1 = Checkpoint::capture(&scorer_at(&model, &ds, 100), 0, 0);
    gen1.save_atomic(&path).unwrap();
    assert!(
        !prev_path(&path).exists(),
        "first save has nothing to rotate"
    );

    let gen2 = Checkpoint::capture(&scorer_at(&model, &ds, 200), 0, 0);
    gen2.save_atomic(&path).unwrap();
    assert_eq!(Checkpoint::load(&path).unwrap(), gen2);
    assert_eq!(Checkpoint::load(&prev_path(&path)).unwrap(), gen1);
}

/// A corrupt primary is quarantined to `<path>.corrupt` (the evidence
/// survives) and the rotated generation is restored in its place.
#[test]
fn corrupt_primary_is_quarantined_and_prev_restored() {
    let (model, ds) = fitted(67);
    let path = temp_path("quarantine.ckpt.json");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(prev_path(&path));
    let _ = std::fs::remove_file(corrupt_path(&path));

    let gen1 = Checkpoint::capture(&scorer_at(&model, &ds, 100), 0, 0);
    gen1.save_atomic(&path).unwrap();
    let gen2 = Checkpoint::capture(&scorer_at(&model, &ds, 200), 0, 0);
    gen2.save_atomic(&path).unwrap();

    // Bit rot / torn write: the primary no longer parses.
    let good = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &good[..good.len() / 3]).unwrap();

    let (loaded, recovered) = Checkpoint::load_with_recovery(&path).unwrap();
    assert_eq!(loaded, gen1);
    match recovered {
        RecoveredFrom::Previous {
            quarantined: Some(corrupt),
        } => {
            assert_eq!(corrupt, corrupt_path(&path));
            let evidence = std::fs::read_to_string(&corrupt).unwrap();
            assert_eq!(
                evidence,
                good[..good.len() / 3],
                "evidence preserved verbatim"
            );
        }
        other => panic!("expected quarantined recovery, got {other:?}"),
    }
    assert!(!path.exists(), "unreadable primary was moved aside");
}

/// The one window of the save protocol where the primary is briefly absent
/// (between the rotation rename and the staging rename): a kill there
/// leaves only `.prev`, and recovery restores it without quarantining
/// anything.
#[test]
fn missing_primary_recovers_from_prev_without_quarantine() {
    let (model, ds) = fitted(71);
    let path = temp_path("rename-window.ckpt.json");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(corrupt_path(&path));

    let gen1 = Checkpoint::capture(&scorer_at(&model, &ds, 120), 3, 1);
    gen1.save_atomic(&path).unwrap();
    // Replay save_atomic up to the crash point: staging written, primary
    // rotated away, and then the kill lands before the final rename.
    let gen2 = Checkpoint::capture(&scorer_at(&model, &ds, 240), 3, 1);
    std::fs::write(staging_path(&path), gen2.to_json().unwrap().pretty()).unwrap();
    std::fs::rename(&path, prev_path(&path)).unwrap();

    let (loaded, recovered) = Checkpoint::load_with_recovery(&path).unwrap();
    assert_eq!(loaded, gen1);
    assert_eq!(recovered, RecoveredFrom::Previous { quarantined: None });
    assert!(!corrupt_path(&path).exists());
}

/// When no generation is loadable, recovery reports the *primary's* error
/// — the configured path is what the operator must go look at.
#[test]
fn recovery_without_any_generation_reports_the_primary_error() {
    let path = temp_path("hopeless.ckpt.json");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(prev_path(&path));
    let err = Checkpoint::load_with_recovery(&path).unwrap_err();
    assert!(matches!(err, CheckpointError::Io(_)), "{err}");

    std::fs::write(&path, "not json at all").unwrap();
    let err = Checkpoint::load_with_recovery(&path).unwrap_err();
    assert!(matches!(err, CheckpointError::Json(_)), "{err}");
    // The quarantine still happened even though the fallback was empty.
    assert!(corrupt_path(&path).exists());
    let _ = std::fs::remove_file(corrupt_path(&path));
}

/// A write failure (full disk, bad path) surfaces as an error without
/// touching any existing generation: the staging file is the casualty, not
/// the durable state.
#[test]
fn failed_save_surfaces_io_error_without_clobbering_state() {
    let (model, ds) = fitted(73);
    // The parent "directory" is a regular file, so creating the staging
    // file fails the way a dead disk would — before any rename runs.
    let bogus_parent = temp_path("not-a-directory");
    std::fs::write(&bogus_parent, "occupied").unwrap();
    let path = bogus_parent.join("c.ckpt.json");
    let cp = Checkpoint::capture(&scorer_at(&model, &ds, 10), 0, 0);
    let err = cp.save_atomic(&path).unwrap_err();
    assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    assert_eq!(std::fs::read_to_string(&bogus_parent).unwrap(), "occupied");
}

/// The acceptance scenario end to end: a kill -9 in the middle of the
/// second checkpoint's durability dance recovers via `.prev` to a resume
/// whose verdict stream is identical to an uninterrupted run.
#[test]
fn kill_during_checkpoint_fsync_recovers_via_prev_to_identical_verdicts() {
    let (model, ds) = fitted(79);
    let path = temp_path("fsync-kill.ckpt.json");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(prev_path(&path));

    let mut reference = OnlineScorer::new(model.clone()).unwrap();
    reference.set_check_every(64).unwrap();
    let reference_verdicts: Vec<_> = (0..400)
        .map(|i| reference.score_record(ds.row(i)).unwrap())
        .collect();

    // First process: checkpoint at 250, then die mid-way through the
    // checkpoint at 300 — staging synced, primary rotated, final rename
    // never happens.
    let mut first = OnlineScorer::new(model.clone()).unwrap();
    first.set_check_every(64).unwrap();
    for i in 0..250 {
        first.score_record(ds.row(i)).unwrap();
    }
    Checkpoint::capture(&first, 0, 0)
        .save_atomic(&path)
        .unwrap();
    for i in 250..300 {
        first.score_record(ds.row(i)).unwrap();
    }
    let half_saved = Checkpoint::capture(&first, 0, 0);
    std::fs::write(staging_path(&path), half_saved.to_json().unwrap().pretty()).unwrap();
    std::fs::rename(&path, prev_path(&path)).unwrap();
    drop(first);

    // Second process: recovery falls back to the 250-record generation and
    // the tail replays exactly as the uninterrupted run scored it.
    let (cp, recovered) = Checkpoint::load_with_recovery(&path).unwrap();
    assert_eq!(recovered, RecoveredFrom::Previous { quarantined: None });
    let mut resumed = OnlineScorer::new(model).unwrap();
    cp.restore(&mut resumed).unwrap();
    assert_eq!(resumed.records_scored(), 250);
    for (i, reference) in reference_verdicts.iter().enumerate().skip(250) {
        let v = resumed.score_record(ds.row(i)).unwrap();
        assert_eq!(v.index, reference.index);
        assert_eq!(v.outlier, reference.outlier);
        assert_eq!(v.score, reference.score);
        assert_eq!(v.drift.is_some(), reference.drift.is_some(), "record {i}");
    }
}

/// End-to-end interrupted run at the crate level: kill after a checkpoint,
/// resume in a new scorer, and the tail of the stream must reproduce the
/// uninterrupted run's verdicts and drift reports exactly.
#[test]
fn resume_after_kill_reproduces_uninterrupted_verdicts() {
    let (model, ds) = fitted(59);
    let path = temp_path("resume.ckpt.json");

    let mut reference = OnlineScorer::new(model.clone()).unwrap();
    reference.set_check_every(64).unwrap();
    let reference_verdicts: Vec<_> = (0..400)
        .map(|i| reference.score_record(ds.row(i)).unwrap())
        .collect();

    // First process: 250 records, checkpoint, "kill" (drop).
    let mut first = OnlineScorer::new(model.clone()).unwrap();
    first.set_check_every(64).unwrap();
    for i in 0..250 {
        first.score_record(ds.row(i)).unwrap();
    }
    Checkpoint::capture(&first, 0, 0)
        .save_atomic(&path)
        .unwrap();
    drop(first);

    // Second process: restore and run the tail.
    let mut resumed = OnlineScorer::new(model).unwrap();
    Checkpoint::load(&path)
        .unwrap()
        .restore(&mut resumed)
        .unwrap();
    assert_eq!(resumed.check_every(), 64); // cadence travels with the state
    for (i, reference) in reference_verdicts.iter().enumerate().skip(250) {
        let v = resumed.score_record(ds.row(i)).unwrap();
        assert_eq!(v.index, reference.index);
        assert_eq!(v.outlier, reference.outlier);
        assert_eq!(v.score, reference.score);
        assert_eq!(v.drift.is_some(), reference.drift.is_some(), "record {i}");
        if let (Some(a), Some(b)) = (&v.drift, &reference.drift) {
            assert_eq!(a.statistics, b.statistics);
            assert_eq!(a.p_values, b.p_values);
            assert_eq!(a.drifted_dims, b.drifted_dims);
        }
    }
}
