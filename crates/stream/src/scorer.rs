//! Record-at-a-time scoring with staleness monitoring.
//!
//! [`OnlineScorer`] wraps a trained [`FittedModel`] for deployment against a
//! live stream: each arriving record is discretized under the trained grid,
//! matched against the mined sparse projections, and folded into a
//! [`DriftMonitor`]. Every `check_every` records the drift test runs and its
//! [`DriftReport`] rides along on that record's [`Verdict`], so the caller
//! learns the grid has gone stale in-band, without polling.

use crate::drift::{DriftMonitor, DriftReport};
use hdoutlier_core::FittedModel;
use hdoutlier_data::DataError;
use hdoutlier_obs as obs;
use std::time::Instant;

/// Event target for the streaming pipeline.
const TARGET: &str = "hdoutlier.stream";

/// Metric handles resolved once at scorer construction so the per-record
/// path never touches the registry lock. Counters are shared by name: two
/// scorers in one process feed the same totals.
#[derive(Debug, Clone)]
struct ScorerMetrics {
    records: obs::Counter,
    outliers: obs::Counter,
    drift_checks: obs::Counter,
    drift_alerts: obs::Counter,
    record_latency_us: obs::Histogram,
}

impl ScorerMetrics {
    fn resolve() -> Self {
        let r = obs::registry();
        ScorerMetrics {
            records: r.counter("hdoutlier.stream.records"),
            outliers: r.counter("hdoutlier.stream.outliers"),
            drift_checks: r.counter("hdoutlier.stream.drift_checks"),
            drift_alerts: r.counter("hdoutlier.stream.drift_alerts"),
            record_latency_us: r.histogram("hdoutlier.stream.record_latency_us"),
        }
    }
}

/// The model-only scoring result for one record, before it is folded into
/// the scorer's mutable state (arrival index, drift monitor, counters).
#[derive(Debug, Clone)]
struct ScoredRecord {
    cells: Vec<u16>,
    score: Option<f64>,
    matched: Vec<usize>,
}

/// The scoring outcome for one arriving record.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// 0-based arrival index of the record.
    pub index: u64,
    /// Grid cells of the record under the trained boundaries.
    pub cells: Vec<u16>,
    /// Whether the record fell into any mined abnormal projection.
    pub outlier: bool,
    /// Most negative sparsity coefficient among matched projections.
    pub score: Option<f64>,
    /// Indices into [`FittedModel::projections`] the record matched.
    pub matched: Vec<usize>,
    /// Present on records where the periodic drift check ran.
    pub drift: Option<DriftReport>,
}

/// A trained model applied record-by-record, with periodic drift checks.
#[derive(Debug, Clone)]
pub struct OnlineScorer {
    model: FittedModel,
    monitor: DriftMonitor,
    alpha: f64,
    check_every: u64,
    scored: u64,
    outliers: u64,
    metrics: ScorerMetrics,
}

impl OnlineScorer {
    /// Default significance level for the periodic drift check.
    pub const DEFAULT_ALPHA: f64 = 0.01;
    /// Default cadence (in records) of the drift check.
    pub const DEFAULT_CHECK_EVERY: u64 = 512;

    /// Wraps a trained model for streaming use.
    ///
    /// # Errors
    /// [`DataError::Parse`] when the model's grid has `phi < 2` (no drift
    /// test is possible on a single range).
    pub fn new(model: FittedModel) -> Result<Self, DataError> {
        let monitor = DriftMonitor::new(model.grid().n_dims(), model.grid().phi())?;
        Ok(Self {
            model,
            monitor,
            alpha: Self::DEFAULT_ALPHA,
            check_every: Self::DEFAULT_CHECK_EVERY,
            scored: 0,
            outliers: 0,
            metrics: ScorerMetrics::resolve(),
        })
    }

    /// Changes the drift-check significance level.
    ///
    /// # Errors
    /// [`DataError::Parse`] unless `0 < alpha < 1`.
    pub fn set_drift_alpha(&mut self, alpha: f64) -> Result<(), DataError> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(DataError::Parse(format!(
                "drift alpha must be in (0, 1), got {alpha}"
            )));
        }
        self.alpha = alpha;
        Ok(())
    }

    /// Changes the drift-check cadence (records between checks).
    ///
    /// # Errors
    /// [`DataError::Parse`] on zero.
    pub fn set_check_every(&mut self, every: u64) -> Result<(), DataError> {
        if every == 0 {
            return Err(DataError::Parse("check cadence must be positive".into()));
        }
        self.check_every = every;
        Ok(())
    }

    /// The wrapped model.
    pub fn model(&self) -> &FittedModel {
        &self.model
    }

    /// The accumulated drift state.
    pub fn monitor(&self) -> &DriftMonitor {
        &self.monitor
    }

    /// Records scored so far.
    pub fn records_scored(&self) -> u64 {
        self.scored
    }

    /// Records flagged as outliers so far.
    pub fn outliers_flagged(&self) -> u64 {
        self.outliers
    }

    /// The configured drift-check significance level.
    pub fn drift_alpha(&self) -> f64 {
        self.alpha
    }

    /// The configured drift-check cadence.
    pub fn check_every(&self) -> u64 {
        self.check_every
    }

    /// Overwrites the scored/outlier totals and drift occupancy — the
    /// resume half of a [`crate::checkpoint::Checkpoint`] round trip.
    /// Callers go through [`crate::checkpoint::Checkpoint::restore`], which
    /// also validates the grid fingerprint.
    pub(crate) fn restore_state(
        &mut self,
        scored: u64,
        outliers: u64,
        drift_counts: Vec<u64>,
        drift_totals: Vec<u64>,
        drift_records: u64,
    ) -> Result<(), DataError> {
        self.monitor
            .restore(drift_counts, drift_totals, drift_records)?;
        self.scored = scored;
        self.outliers = outliers;
        Ok(())
    }

    /// Clears drift state (e.g. after swapping in a re-fitted model).
    pub fn reset_drift(&mut self) {
        self.monitor.reset();
    }

    /// The read-only half of scoring: discretize and match one record
    /// against the immutable model. Depends only on `self.model`, mutates
    /// nothing — which is what lets [`OnlineScorer::score_batch`] fan it out
    /// across pool workers without changing any answer.
    fn score_readonly(&self, row: &[f64]) -> Result<ScoredRecord, DataError> {
        // Profiler-only frame (one relaxed load when profiling is off):
        // attributes batch-scoring samples to the read-only phase on
        // whichever pool worker runs it.
        let _score = obs::profile_span(TARGET, "score");
        let cells = self.model.grid().assign_row(row)?;
        let matches = self.model.matches(row)?;
        let score = matches
            .iter()
            .map(|m| m.projection.sparsity)
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.min(s)))
            });
        let matched: Vec<usize> = matches.into_iter().map(|m| m.index).collect();
        Ok(ScoredRecord {
            cells,
            score,
            matched,
        })
    }

    /// Scores one arriving record.
    ///
    /// # Errors
    /// [`DataError::ShapeMismatch`] on a record of the wrong width.
    pub fn score_record(&mut self, row: &[f64]) -> Result<Verdict, DataError> {
        // Per-record wall-clock costs two `Instant::now` calls; only spend
        // them when timing was requested (`obs::set_timing`, e.g. via the
        // CLI's `--metrics-out`). The counters below are single relaxed
        // atomic adds and always run.
        let start = if obs::timing_enabled() {
            Some(Instant::now())
        } else {
            None
        };
        let scored = self.score_readonly(row)?;
        let verdict = self.apply(scored)?;
        if let Some(start) = start {
            self.metrics
                .record_latency_us
                .record(start.elapsed().as_secs_f64() * 1e6);
        }
        Ok(verdict)
    }

    /// Scores a bounded batch of records, computing the read-only phase on
    /// `threads` pool workers and then applying results to the mutable state
    /// (drift monitor, counters, drift checks) serially in arrival order.
    ///
    /// Because [`OnlineScorer::score_readonly`] depends only on the
    /// immutable fitted model, the verdicts — including drift reports and
    /// arrival indices — are byte-identical to calling
    /// [`OnlineScorer::score_record`] on each row in order, at any thread
    /// count and any batch size. A malformed row yields an `Err` in its slot
    /// and, exactly like the record-at-a-time path, leaves the scorer state
    /// untouched for that row.
    pub fn score_batch<R: AsRef<[f64]> + Sync>(
        &mut self,
        rows: &[R],
        threads: usize,
    ) -> Vec<Result<Verdict, DataError>> {
        let scored: Vec<Result<ScoredRecord, DataError>> = if threads > 1 {
            hdoutlier_pool::map(threads, rows, |_, row| self.score_readonly(row.as_ref()))
        } else {
            rows.iter()
                .map(|row| self.score_readonly(row.as_ref()))
                .collect()
        };
        scored
            .into_iter()
            .map(|r| r.and_then(|s| self.apply(s)))
            .collect()
    }

    /// The stateful half of scoring: folds an already-scored record into the
    /// drift monitor and counters, runs the periodic drift check, and stamps
    /// the arrival index. Must run in arrival order, on one thread.
    fn apply(&mut self, scored: ScoredRecord) -> Result<Verdict, DataError> {
        let ScoredRecord {
            cells,
            score,
            matched,
        } = scored;
        self.monitor.observe_cells(&cells)?;
        let index = self.scored;
        self.scored += 1;
        let drift = if self.scored.is_multiple_of(self.check_every) {
            let _span = obs::span(obs::Level::Debug, TARGET, "drift_check");
            self.metrics.drift_checks.inc();
            let report = self.monitor.report(self.alpha);
            if report.any_drift() {
                self.metrics.drift_alerts.inc();
                obs::event(
                    obs::Level::Warn,
                    TARGET,
                    "drift_alert",
                    &[
                        ("record", obs::Value::U64(index)),
                        (
                            "drifted_dims",
                            obs::Value::U64(report.drifted_dims.len() as u64),
                        ),
                    ],
                );
            }
            Some(report)
        } else {
            None
        };
        self.metrics.records.inc();
        if !matched.is_empty() {
            self.outliers += 1;
            self.metrics.outliers.inc();
        }
        Ok(Verdict {
            index,
            cells,
            outlier: !matched.is_empty(),
            score,
            matched,
            drift,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_core::{OutlierDetector, SearchMethod};
    use hdoutlier_data::generators::{planted_outliers, PlantedConfig, PlantedOutliers};

    fn fit() -> (FittedModel, PlantedOutliers) {
        let planted = planted_outliers(&PlantedConfig {
            n_rows: 2000,
            n_dims: 8,
            n_outliers: 5,
            strong_groups: Some(3),
            seed: 17,
            ..PlantedConfig::default()
        });
        let model = OutlierDetector::builder()
            .phi(5)
            .k(2)
            .m(8)
            .search(SearchMethod::BruteForce)
            .build()
            .fit(&planted.dataset)
            .unwrap();
        (model, planted)
    }

    #[test]
    fn verdicts_agree_with_batch_model() {
        let (model, planted) = fit();
        let mut scorer = OnlineScorer::new(model.clone()).unwrap();
        for i in 0..200 {
            let row = planted.dataset.row(i);
            let v = scorer.score_record(row).unwrap();
            assert_eq!(v.index, i as u64);
            assert_eq!(v.outlier, model.is_outlier(row).unwrap());
            assert_eq!(v.score, model.score(row).unwrap());
            assert_eq!(v.cells, model.grid().assign_row(row).unwrap());
        }
        assert_eq!(scorer.records_scored(), 200);
    }

    #[test]
    fn drift_report_rides_on_the_cadence_record() {
        let (model, planted) = fit();
        let mut scorer = OnlineScorer::new(model).unwrap();
        scorer.set_check_every(50).unwrap();
        for i in 0..120 {
            let v = scorer.score_record(planted.dataset.row(i % 100)).unwrap();
            let expect_report = (i + 1) % 50 == 0;
            assert_eq!(v.drift.is_some(), expect_report, "record {i}");
        }
    }

    #[test]
    fn in_distribution_stream_reports_no_drift() {
        let (model, planted) = fit();
        let mut scorer = OnlineScorer::new(model).unwrap();
        scorer.set_check_every(1000).unwrap();
        let mut last = None;
        for i in 0..2000 {
            let v = scorer.score_record(planted.dataset.row(i)).unwrap();
            if let Some(r) = v.drift {
                last = Some(r);
            }
        }
        let report = last.expect("cadence fired");
        assert!(!report.any_drift(), "{report:?}");
    }

    #[test]
    fn shifted_stream_reports_drift() {
        let (model, planted) = fit();
        let n_dims = planted.dataset.n_dims();
        let mut scorer = OnlineScorer::new(model).unwrap();
        scorer.set_check_every(500).unwrap();
        // Every record far in one tail of dim 0 → that dimension's
        // occupancy collapses onto one range.
        let mut shifted = vec![0.0f64; n_dims];
        shifted[0] = 100.0;
        let mut last = None;
        for _ in 0..500 {
            let v = scorer.score_record(&shifted).unwrap();
            if let Some(r) = v.drift {
                last = Some(r);
            }
        }
        let report = last.expect("cadence fired");
        assert!(report.drifted_dims.contains(&0), "{report:?}");
        scorer.reset_drift();
        assert_eq!(scorer.monitor().records_observed(), 0);
    }

    /// A Verdict's full observable state, bit-exact, for equality checks.
    fn fingerprint(v: &Verdict) -> (u64, Vec<u16>, bool, Option<u64>, Vec<usize>, Option<bool>) {
        (
            v.index,
            v.cells.clone(),
            v.outlier,
            v.score.map(f64::to_bits),
            v.matched.clone(),
            v.drift.as_ref().map(|r| r.any_drift()),
        )
    }

    #[test]
    fn batch_scoring_matches_record_at_a_time_at_any_thread_count() {
        let (model, planted) = fit();
        let rows: Vec<Vec<f64>> = (0..300).map(|i| planted.dataset.row(i).to_vec()).collect();

        let mut serial = OnlineScorer::new(model.clone()).unwrap();
        serial.set_check_every(64).unwrap();
        let want: Vec<_> = rows
            .iter()
            .map(|r| fingerprint(&serial.score_record(r).unwrap()))
            .collect();

        for threads in [1, 2, 8] {
            let mut batched = OnlineScorer::new(model.clone()).unwrap();
            batched.set_check_every(64).unwrap();
            // Uneven batch sizes so drift-check cadence crosses batch edges.
            let mut got = Vec::new();
            for chunk in rows.chunks(37) {
                for v in batched.score_batch(chunk, threads) {
                    got.push(fingerprint(&v.unwrap()));
                }
            }
            assert_eq!(got, want, "threads = {threads}");
            assert_eq!(batched.records_scored(), serial.records_scored());
            assert_eq!(batched.outliers_flagged(), serial.outliers_flagged());
        }
    }

    #[test]
    fn batch_error_rows_leave_state_untouched() {
        let (model, planted) = fit();
        let mut scorer = OnlineScorer::new(model).unwrap();
        let good = planted.dataset.row(0).to_vec();
        let rows = vec![good.clone(), vec![0.0], good.clone()];
        let out = scorer.score_batch(&rows, 2);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        // The malformed row consumed no arrival index, same as score_record.
        assert_eq!(out[2].as_ref().unwrap().index, 1);
        assert_eq!(scorer.records_scored(), 2);
    }

    #[test]
    fn configuration_is_validated() {
        let (model, _) = fit();
        let mut scorer = OnlineScorer::new(model).unwrap();
        assert!(scorer.set_drift_alpha(0.0).is_err());
        assert!(scorer.set_drift_alpha(1.0).is_err());
        assert!(scorer.set_drift_alpha(0.05).is_ok());
        assert!(scorer.set_check_every(0).is_err());
        assert!(scorer.set_check_every(64).is_ok());
        assert!(scorer.score_record(&[0.0]).is_err()); // wrong width
    }
}
