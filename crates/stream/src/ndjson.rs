//! The NDJSON verdict wire format.
//!
//! One rendering, two transports: the `hdoutlier stream` subcommand writes
//! these lines to stdout, and the `hdoutlier serve` scoring server writes
//! the *same* lines into HTTP response bodies. Keeping the renderer here —
//! next to the [`Verdict`] it serializes — is what makes the serve path's
//! "byte-identical to `stream`" guarantee a matter of construction rather
//! than of keeping two copies in sync.
//!
//! Line shapes:
//!
//! - scoring verdict: `{"record":N,"outlier":bool,"score":x|null,
//!   "projections":[...]}` plus a `"drift"` object on cadence records;
//! - error verdict (skip/quarantine policies): `{"line":N,"error":"...",
//!   "action":"skip|quarantine|abort"}`.

use crate::drift::DriftReport;
use crate::scorer::{OnlineScorer, Verdict};
use hdoutlier_json::{FieldChain, Json, JsonError};

/// One NDJSON scoring verdict line.
///
/// # Errors
/// [`JsonError`] on builder misuse (not reachable from a well-formed
/// verdict).
pub fn verdict_json(verdict: &Verdict, scorer: &OnlineScorer) -> Result<Json, JsonError> {
    let projections: Vec<Json> = verdict
        .matched
        .iter()
        .map(|&i| Json::from(scorer.model().projections()[i].projection.to_string()))
        .collect();
    let mut j = Json::object()
        .field("record", verdict.index)
        .field("outlier", verdict.outlier)
        .field("score", verdict.score.map_or(Json::Null, Json::Number))
        .field("projections", Json::Array(projections))?;
    if let Some(report) = &verdict.drift {
        j = j.field("drift", drift_json(report)?)?;
    }
    Ok(j)
}

/// One NDJSON error verdict — what the skip/quarantine policies emit in
/// place of a scoring verdict so downstream consumers see the gap in-band.
///
/// # Errors
/// [`JsonError`] on builder misuse (not reachable).
pub fn error_json(line_no: usize, reason: &str, action: &str) -> Result<Json, JsonError> {
    Json::object()
        .field("line", line_no)
        .field("error", reason)
        .field("action", action)
}

/// The `"drift"` object attached to cadence-record verdicts.
///
/// # Errors
/// [`JsonError`] on builder misuse (not reachable).
pub fn drift_json(report: &DriftReport) -> Result<Json, JsonError> {
    let p_values: Vec<Json> = report.p_values.iter().map(|&p| Json::Number(p)).collect();
    Json::object()
        .field("drifted", report.any_drift())
        .field(
            "drifted_dims",
            report
                .drifted_dims
                .iter()
                .map(|&d| Json::from(d))
                .collect::<Vec<_>>(),
        )
        .field("alpha", report.alpha)
        .field("p_values", Json::Array(p_values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_core::{OutlierDetector, SearchMethod};
    use hdoutlier_data::generators::{planted_outliers, PlantedConfig};

    #[test]
    fn verdict_lines_have_the_documented_shape() {
        let planted = planted_outliers(&PlantedConfig {
            n_rows: 500,
            n_dims: 6,
            n_outliers: 3,
            strong_groups: Some(2),
            seed: 23,
            ..PlantedConfig::default()
        });
        let model = OutlierDetector::builder()
            .phi(4)
            .k(2)
            .m(5)
            .search(SearchMethod::BruteForce)
            .build()
            .fit(&planted.dataset)
            .unwrap();
        let mut scorer = OnlineScorer::new(model).unwrap();
        scorer.set_check_every(100).unwrap();
        let mut saw_drift = false;
        for i in 0..120 {
            let v = scorer.score_record(planted.dataset.row(i)).unwrap();
            let line = verdict_json(&v, &scorer).unwrap().render();
            let j = Json::parse(&line).unwrap();
            assert_eq!(j.get("record").and_then(Json::as_number), Some(i as f64));
            assert!(j.get("outlier").is_some(), "{line}");
            assert!(j.get("score").is_some(), "{line}");
            assert!(j.get("projections").and_then(Json::as_array).is_some());
            if j.get("drift").is_some() {
                saw_drift = true;
                let d = j.get("drift").unwrap();
                assert!(d.get("drifted").is_some(), "{line}");
                assert!(d.get("p_values").and_then(Json::as_array).is_some());
            }
        }
        assert!(saw_drift, "cadence record carries a drift object");

        let err = error_json(7, "bad row", "skip").unwrap().render();
        let j = Json::parse(&err).unwrap();
        assert_eq!(j.get("line").and_then(Json::as_number), Some(7.0));
        assert_eq!(j.get("action").and_then(Json::as_str), Some("skip"));
    }
}
