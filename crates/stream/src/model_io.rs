//! JSON persistence for fitted models: `detect --save-model` writes one;
//! `score --model`, `stream --model`, and a `serve` session's `"model"`
//! field load one and score records without the training data.
//!
//! This lives in the streaming crate (rather than the CLI, where it
//! started) because every deployment surface that scores without training
//! data — the `score`/`stream` subcommands and the network scoring server
//! — needs it; the CLI re-exports it unchanged.

use hdoutlier_core::projection::{Projection, STAR};
use hdoutlier_core::report::ScoredProjection;
use hdoutlier_core::FittedModel;
use hdoutlier_data::GridSpec;
use hdoutlier_json::{FieldChain, Json, JsonError};

/// Serialization format version, written into every model file.
pub const FORMAT_VERSION: f64 = 1.0;

/// Errors while loading a model file.
#[derive(Debug)]
pub enum ModelIoError {
    /// The file is not valid JSON.
    Json(JsonError),
    /// The JSON does not describe a model (missing/ill-typed fields).
    Schema(String),
    /// The grid parts fail validation.
    Grid(hdoutlier_data::DataError),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Json(e) => write!(f, "model file is not valid JSON: {e}"),
            ModelIoError::Schema(msg) => write!(f, "model file schema error: {msg}"),
            ModelIoError::Grid(e) => write!(f, "model grid invalid: {e}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

/// Serializes a fitted model to a JSON value.
///
/// # Errors
/// [`JsonError`] on builder misuse (not reachable from a well-formed model).
pub fn to_json(model: &FittedModel) -> Result<Json, JsonError> {
    let grid = model.grid();
    let boundaries: Vec<Json> = (0..grid.n_dims())
        .map(|d| {
            Json::Array(
                grid.boundaries(d)
                    .iter()
                    .map(|&b| Json::Number(b))
                    .collect(),
            )
        })
        .collect();
    let names: Vec<Json> = grid
        .names()
        .iter()
        .map(|n| Json::String(n.clone()))
        .collect();
    let projections: Vec<Json> = model
        .projections()
        .iter()
        .map(|s| {
            let genes: Vec<Json> = s
                .projection
                .genes()
                .iter()
                .map(|&g| {
                    if g == STAR {
                        Json::Null
                    } else {
                        Json::Number(g as f64)
                    }
                })
                .collect();
            Json::object()
                .field("genes", Json::Array(genes))
                .field("sparsity", s.sparsity)
                .field("count", s.count)
        })
        .collect::<Result<_, _>>()?;
    Json::object()
        .field("format", FORMAT_VERSION)
        .field(
            "grid",
            Json::object()
                .field("phi", grid.phi())
                .field("names", Json::Array(names))
                .field("boundaries", Json::Array(boundaries))?,
        )
        .field("projections", Json::Array(projections))
}

/// Deserializes a fitted model from JSON text.
pub fn from_json_text(text: &str) -> Result<FittedModel, ModelIoError> {
    let json = Json::parse(text).map_err(ModelIoError::Json)?;
    from_json(&json)
}

/// Deserializes a fitted model from a parsed JSON value.
pub fn from_json(json: &Json) -> Result<FittedModel, ModelIoError> {
    let schema = |msg: &str| ModelIoError::Schema(msg.to_string());
    let version = json
        .get("format")
        .and_then(Json::as_number)
        .ok_or_else(|| schema("missing format version"))?;
    if version != FORMAT_VERSION {
        return Err(schema(&format!("unsupported format version {version}")));
    }
    let grid = json.get("grid").ok_or_else(|| schema("missing grid"))?;
    let phi = grid
        .get("phi")
        .and_then(Json::as_number)
        .filter(|&p| p >= 1.0 && p.fract() == 0.0)
        .ok_or_else(|| schema("grid.phi must be a positive integer"))? as u32;
    let names: Vec<String> = grid
        .get("names")
        .and_then(Json::as_array)
        .ok_or_else(|| schema("grid.names must be an array"))?
        .iter()
        .map(|n| {
            n.as_str()
                .map(str::to_string)
                .ok_or_else(|| schema("grid.names entries must be strings"))
        })
        .collect::<Result<_, _>>()?;
    let uppers: Vec<Vec<f64>> = grid
        .get("boundaries")
        .and_then(Json::as_array)
        .ok_or_else(|| schema("grid.boundaries must be an array"))?
        .iter()
        .map(|dim| {
            dim.as_array()
                .ok_or_else(|| schema("grid.boundaries entries must be arrays"))?
                .iter()
                .map(|b| {
                    b.as_number()
                        .ok_or_else(|| schema("boundaries must be numbers"))
                })
                .collect::<Result<Vec<f64>, _>>()
        })
        .collect::<Result<_, _>>()?;
    let spec = GridSpec::from_parts(uppers, phi, names).map_err(ModelIoError::Grid)?;

    let d = spec.n_dims();
    let projections: Vec<ScoredProjection> = json
        .get("projections")
        .and_then(Json::as_array)
        .ok_or_else(|| schema("missing projections array"))?
        .iter()
        .map(|p| {
            let genes_json = p
                .get("genes")
                .and_then(Json::as_array)
                .ok_or_else(|| schema("projection.genes must be an array"))?;
            if genes_json.len() != d {
                return Err(schema(&format!(
                    "projection has {} genes for a {d}-dimensional grid",
                    genes_json.len()
                )));
            }
            let genes: Vec<u16> = genes_json
                .iter()
                .map(|g| match g {
                    Json::Null => Ok(STAR),
                    other => other
                        .as_number()
                        .filter(|&v| v >= 0.0 && v.fract() == 0.0 && v < phi as f64)
                        .map(|v| v as u16)
                        .ok_or_else(|| schema("genes must be null or a range in 0..phi")),
                })
                .collect::<Result<_, _>>()?;
            let sparsity = p
                .get("sparsity")
                .and_then(Json::as_number)
                .ok_or_else(|| schema("projection.sparsity must be a number"))?;
            let count = p
                .get("count")
                .and_then(Json::as_number)
                .filter(|&c| c >= 0.0 && c.fract() == 0.0)
                .ok_or_else(|| schema("projection.count must be a non-negative integer"))?
                as usize;
            Ok(ScoredProjection {
                projection: Projection::from_genes(genes),
                sparsity,
                count,
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(FittedModel::new(spec, projections))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_core::detector::{OutlierDetector, SearchMethod};
    use hdoutlier_data::generators::{planted_outliers, PlantedConfig};

    fn fitted() -> (FittedModel, hdoutlier_data::generators::PlantedOutliers) {
        let planted = planted_outliers(&PlantedConfig {
            n_rows: 800,
            n_dims: 8,
            n_outliers: 3,
            strong_groups: Some(2),
            seed: 33,
            ..PlantedConfig::default()
        });
        let model = OutlierDetector::builder()
            .phi(4)
            .k(2)
            .m(6)
            .search(SearchMethod::BruteForce)
            .build()
            .fit(&planted.dataset)
            .unwrap();
        (model, planted)
    }

    #[test]
    fn model_round_trips_and_scores_identically() {
        let (model, planted) = fitted();
        let text = to_json(&model).unwrap().pretty();
        let loaded = from_json_text(&text).expect("round trip");
        // Same projections...
        assert_eq!(loaded.projections().len(), model.projections().len());
        for (a, b) in loaded.projections().iter().zip(model.projections()) {
            assert_eq!(a.projection, b.projection);
            assert_eq!(a.sparsity, b.sparsity);
            assert_eq!(a.count, b.count);
        }
        // ...and identical scoring on every training row.
        for row in 0..planted.dataset.n_rows() {
            let r = planted.dataset.row(row);
            assert_eq!(loaded.score(r).unwrap(), model.score(r).unwrap());
        }
    }

    #[test]
    fn schema_errors_are_reported() {
        assert!(matches!(
            from_json_text("not json"),
            Err(ModelIoError::Json(_))
        ));
        assert!(matches!(from_json_text("{}"), Err(ModelIoError::Schema(_))));
        assert!(from_json_text(r#"{"format": 99}"#).is_err());
        // Valid envelope, broken grid.
        let bad =
            r#"{"format":1,"grid":{"phi":3,"names":["a"],"boundaries":[[2,1]]},"projections":[]}"#;
        assert!(matches!(from_json_text(bad), Err(ModelIoError::Grid(_))));
        // Projection with wrong gene count.
        let bad = r#"{"format":1,"grid":{"phi":3,"names":["a"],"boundaries":[[1,2]]},
                      "projections":[{"genes":[0,1],"sparsity":-3,"count":1}]}"#;
        assert!(matches!(from_json_text(bad), Err(ModelIoError::Schema(_))));
        // Gene out of phi range.
        let bad = r#"{"format":1,"grid":{"phi":3,"names":["a"],"boundaries":[[1,2]]},
                      "projections":[{"genes":[7],"sparsity":-3,"count":1}]}"#;
        assert!(matches!(from_json_text(bad), Err(ModelIoError::Schema(_))));
    }

    #[test]
    fn stars_serialize_as_null() {
        let (model, _) = fitted();
        let json = to_json(&model).unwrap();
        let text = json.render();
        assert!(text.contains("null"), "{text}");
        assert!(text.contains("\"format\":1"));
    }
}
