//! Crash-safe persistence of online-scorer state.
//!
//! A long-running deployment of [`OnlineScorer`] accumulates state that is
//! expensive — or impossible — to rebuild after a crash or redeploy: the
//! drift monitor's per-range occupancy (the staleness signal silently
//! resets to "no evidence" if lost), the record index (verdict numbering),
//! and the outlier/skip totals. [`Checkpoint`] captures that state as a
//! plain value, serializes it through the in-tree [`hdoutlier_json`]
//! machinery, and persists it *atomically and durably*:
//! [`Checkpoint::save_atomic`] writes a sibling temp file
//! ([`staging_path`]), fsyncs it and its directory, rotates the old
//! generation to [`prev_path`], and renames the new one into place — so a
//! kill or power loss at any instant leaves a loadable generation on disk,
//! never a torn one. [`Checkpoint::load_with_recovery`] completes the
//! story on the read side: a corrupt primary is quarantined to
//! [`corrupt_path`] and the `.prev` generation restored instead.
//!
//! Resume is guarded by a fingerprint of the model's grid
//! ([`grid_fingerprint`]): drift occupancy is only meaningful under the
//! boundaries it was accumulated against, so [`Checkpoint::restore`]
//! refuses to graft state onto a scorer whose grid differs.

use crate::scorer::OnlineScorer;
use hdoutlier_core::FittedModel;
use hdoutlier_json::{FieldChain, Json, JsonError};
use std::path::{Path, PathBuf};

/// Serialization format version, written into every checkpoint file.
pub const FORMAT_VERSION: f64 = 1.0;

/// Errors while loading or applying a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file is not valid JSON.
    Json(JsonError),
    /// The JSON does not describe a checkpoint (missing/ill-typed fields).
    Schema(String),
    /// The checkpoint does not fit the scorer it is being restored into
    /// (grid fingerprint or drift-state shape mismatch).
    Mismatch(String),
    /// Filesystem failure while reading or writing.
    Io(std::io::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Json(e) => write!(f, "checkpoint is not valid JSON: {e}"),
            CheckpointError::Schema(msg) => write!(f, "checkpoint schema error: {msg}"),
            CheckpointError::Mismatch(msg) => write!(f, "checkpoint does not match model: {msg}"),
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a hash of the model's grid structure: φ, dimensionality, and every
/// boundary's exact bit pattern. Two models fingerprint equal iff their
/// grids discretize identically, which is exactly when drift occupancy
/// transfers between them.
pub fn grid_fingerprint(model: &FittedModel) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut fold = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    let grid = model.grid();
    fold(u64::from(grid.phi()));
    fold(grid.n_dims() as u64);
    for dim in 0..grid.n_dims() {
        for &b in grid.boundaries(dim) {
            fold(b.to_bits());
        }
    }
    hash
}

/// The sibling path [`Checkpoint::save_atomic`] stages into before the
/// rename (`<path>.tmp`). Exposed so operators and tests can reason about —
/// and fault-inject — the window between temp-write and rename.
pub fn staging_path(path: &Path) -> PathBuf {
    sibling(path, ".tmp")
}

/// Where [`Checkpoint::save_atomic`] rotates the previous generation
/// (`<path>.prev`) before installing a new one. Recovery
/// ([`Checkpoint::load_with_recovery`]) falls back to it when the primary
/// file is corrupt or lost mid-rotation.
pub fn prev_path(path: &Path) -> PathBuf {
    sibling(path, ".prev")
}

/// Where [`Checkpoint::load_with_recovery`] quarantines a corrupt primary
/// checkpoint (`<path>.corrupt`) so the evidence survives the recovery
/// instead of being overwritten by the next cadence save.
pub fn corrupt_path(path: &Path) -> PathBuf {
    sibling(path, ".corrupt")
}

/// `<path><suffix>` as a sibling file in the same directory.
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

/// Fsyncs the directory containing `path`, making renames and new entries
/// in it durable — an atomic rename protocol without this survives a
/// process kill but not a power loss (the rename may still live only in
/// the page cache when the lights go out).
fn fsync_parent(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()
}

/// A point-in-time snapshot of streaming state: everything an
/// [`OnlineScorer`] (plus the CLI's skip/quarantine accounting) needs to
/// continue where a previous process stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// [`grid_fingerprint`] of the model the state was accumulated under.
    pub fingerprint: u64,
    /// Records scored (the next verdict's 0-based index).
    pub records_scored: u64,
    /// Records flagged as outliers.
    pub outliers: u64,
    /// Records skipped by the caller's error policy.
    pub skipped: u64,
    /// Records quarantined by the caller's error policy.
    pub quarantined: u64,
    /// Drift-check significance level in effect.
    pub drift_alpha: f64,
    /// Drift-check cadence in effect.
    pub check_every: u64,
    /// Records folded into the drift monitor.
    pub drift_records: u64,
    /// Per-dimension non-missing observation totals.
    pub drift_totals: Vec<u64>,
    /// Range occupancy, flattened `dim * phi + range`.
    pub drift_counts: Vec<u64>,
}

impl Checkpoint {
    /// Snapshots a scorer plus the caller's skip/quarantine totals.
    pub fn capture(scorer: &OnlineScorer, skipped: u64, quarantined: u64) -> Self {
        let monitor = scorer.monitor();
        Checkpoint {
            fingerprint: grid_fingerprint(scorer.model()),
            records_scored: scorer.records_scored(),
            outliers: scorer.outliers_flagged(),
            skipped,
            quarantined,
            drift_alpha: scorer.drift_alpha(),
            check_every: scorer.check_every(),
            drift_records: monitor.records_observed(),
            drift_totals: monitor.totals().to_vec(),
            drift_counts: monitor.counts().to_vec(),
        }
    }

    /// Restores this checkpoint's state into `scorer`, which must wrap a
    /// model whose grid fingerprint matches.
    ///
    /// # Errors
    /// [`CheckpointError::Mismatch`] on a fingerprint difference, an
    /// invalid cadence/alpha, or drift vectors of the wrong shape.
    pub fn restore(&self, scorer: &mut OnlineScorer) -> Result<(), CheckpointError> {
        let fingerprint = grid_fingerprint(scorer.model());
        if fingerprint != self.fingerprint {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint was taken under grid fingerprint {:016x}, model has {fingerprint:016x} \
                 (drift occupancy does not transfer between grids; re-fit or drop --resume)",
                self.fingerprint
            )));
        }
        let adapt = |e: hdoutlier_data::DataError| CheckpointError::Mismatch(e.to_string());
        scorer.set_drift_alpha(self.drift_alpha).map_err(adapt)?;
        scorer.set_check_every(self.check_every).map_err(adapt)?;
        scorer
            .restore_state(
                self.records_scored,
                self.outliers,
                self.drift_counts.clone(),
                self.drift_totals.clone(),
                self.drift_records,
            )
            .map_err(adapt)
    }

    /// Serializes to a JSON value (schema documented in `docs/metrics.md`).
    ///
    /// # Errors
    /// [`JsonError`] on builder misuse (not reachable from a well-formed
    /// checkpoint).
    pub fn to_json(&self) -> Result<Json, JsonError> {
        let counts: Vec<Json> = self.drift_counts.iter().map(|&c| Json::from(c)).collect();
        let totals: Vec<Json> = self.drift_totals.iter().map(|&t| Json::from(t)).collect();
        Json::object()
            .field("format", FORMAT_VERSION)
            // Hex, not a JSON number: u64 fingerprints exceed f64's exact
            // integer range.
            .field("fingerprint", format!("{:016x}", self.fingerprint))
            .field(
                "scorer",
                Json::object()
                    .field("records_scored", self.records_scored)
                    .field("outliers", self.outliers)
                    .field("drift_alpha", self.drift_alpha)
                    .field("check_every", self.check_every)
                    .field(
                        "drift",
                        Json::object()
                            .field("records", self.drift_records)
                            .field("totals", Json::Array(totals))
                            .field("counts", Json::Array(counts))?,
                    )?,
            )
            .field(
                "stream",
                Json::object()
                    .field("skipped", self.skipped)
                    .field("quarantined", self.quarantined)?,
            )
    }

    /// Deserializes from JSON text.
    ///
    /// # Errors
    /// [`CheckpointError::Json`] or [`CheckpointError::Schema`].
    pub fn from_json_text(text: &str) -> Result<Self, CheckpointError> {
        let json = Json::parse(text).map_err(CheckpointError::Json)?;
        Self::from_json(&json)
    }

    /// Deserializes from a parsed JSON value.
    pub fn from_json(json: &Json) -> Result<Self, CheckpointError> {
        let schema = |msg: String| CheckpointError::Schema(msg);
        let version = json
            .get("format")
            .and_then(Json::as_number)
            .ok_or_else(|| schema("missing format version".into()))?;
        if version != FORMAT_VERSION {
            return Err(schema(format!("unsupported format version {version}")));
        }
        let fingerprint = json
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| schema("fingerprint must be a hex string".into()))?;
        let scorer = json
            .get("scorer")
            .ok_or_else(|| schema("missing scorer section".into()))?;
        let drift = scorer
            .get("drift")
            .ok_or_else(|| schema("missing scorer.drift section".into()))?;
        let stream = json
            .get("stream")
            .ok_or_else(|| schema("missing stream section".into()))?;
        let drift_alpha = scorer
            .get("drift_alpha")
            .and_then(Json::as_number)
            .filter(|a| *a > 0.0 && *a < 1.0)
            .ok_or_else(|| schema("scorer.drift_alpha must be in (0, 1)".into()))?;
        Ok(Checkpoint {
            fingerprint,
            records_scored: count_field(scorer, "records_scored")?,
            outliers: count_field(scorer, "outliers")?,
            skipped: count_field(stream, "skipped")?,
            quarantined: count_field(stream, "quarantined")?,
            drift_alpha,
            check_every: count_field(scorer, "check_every")?,
            drift_records: count_field(drift, "records")?,
            drift_totals: count_array(drift, "totals")?,
            drift_counts: count_array(drift, "counts")?,
        })
    }

    /// Writes the checkpoint to `path` atomically and durably:
    ///
    /// 1. the JSON is staged into [`staging_path`] and fsynced (data
    ///    durable before any rename moves it into place),
    /// 2. the parent directory is fsynced (the staging entry itself is
    ///    durable before the rotation starts),
    /// 3. an existing checkpoint is rotated to [`prev_path`] — the last
    ///    good generation survives as a recovery fallback,
    /// 4. the staging file is renamed over `path`,
    /// 5. the parent directory is fsynced again (the renames are durable).
    ///
    /// A kill — or a power loss — at any instant leaves a loadable
    /// generation on disk: the new one, the previous one at `path`, or the
    /// previous one rotated to `<path>.prev` (the one window where `path`
    /// itself is briefly absent), which [`Checkpoint::load_with_recovery`]
    /// falls back to.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] when a write, fsync, or rename fails.
    pub fn save_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        use std::io::Write;
        let text = self.to_json().map_err(CheckpointError::Json)?.pretty() + "\n";
        let staging = staging_path(path);
        let mut file = std::fs::File::create(&staging).map_err(CheckpointError::Io)?;
        file.write_all(text.as_bytes())
            .map_err(CheckpointError::Io)?;
        file.sync_all().map_err(CheckpointError::Io)?;
        drop(file);
        fsync_parent(path).map_err(CheckpointError::Io)?;
        if path.exists() {
            std::fs::rename(path, prev_path(path)).map_err(CheckpointError::Io)?;
        }
        std::fs::rename(&staging, path).map_err(CheckpointError::Io)?;
        fsync_parent(path).map_err(CheckpointError::Io)
    }

    /// Loads a checkpoint previously written by [`Checkpoint::save_atomic`].
    ///
    /// # Errors
    /// [`CheckpointError::Io`], [`CheckpointError::Json`], or
    /// [`CheckpointError::Schema`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(CheckpointError::Io)?;
        Self::from_json_text(&text)
    }

    /// Loads `path`, falling back to the rotated [`prev_path`] generation
    /// when the primary is corrupt, truncated, or missing:
    ///
    /// - a primary that fails to *parse* (bit rot, torn write on a
    ///   non-atomic filesystem, disk-full truncation) is quarantined to
    ///   [`corrupt_path`] — the evidence survives for the operator — and
    ///   the previous generation is restored instead;
    /// - a primary that is *missing* while `<path>.prev` exists (a kill in
    ///   the one window of the save protocol where `path` is briefly
    ///   absent) restores the previous generation directly;
    /// - when neither generation loads, the primary's error is returned
    ///   (environmental I/O failures are never masked by the fallback).
    ///
    /// # Errors
    /// The primary's [`CheckpointError`] when no generation is loadable.
    pub fn load_with_recovery(path: &Path) -> Result<(Self, RecoveredFrom), CheckpointError> {
        match Self::load(path) {
            Ok(cp) => Ok((cp, RecoveredFrom::Primary)),
            Err(CheckpointError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                Self::fall_back_to_prev(path, CheckpointError::Io(e), None)
            }
            Err(primary_err @ (CheckpointError::Json(_) | CheckpointError::Schema(_))) => {
                let corrupt = corrupt_path(path);
                let quarantined = std::fs::rename(path, &corrupt).is_ok().then_some(corrupt);
                Self::fall_back_to_prev(path, primary_err, quarantined)
            }
            // Mismatch cannot happen here (no scorer involved); other Io
            // errors (permissions, device faults) are environmental and
            // surface as-is.
            Err(e) => Err(e),
        }
    }

    /// The `.prev` leg of [`Checkpoint::load_with_recovery`].
    fn fall_back_to_prev(
        path: &Path,
        primary_err: CheckpointError,
        quarantined: Option<PathBuf>,
    ) -> Result<(Self, RecoveredFrom), CheckpointError> {
        match Self::load(&prev_path(path)) {
            Ok(cp) => Ok((cp, RecoveredFrom::Previous { quarantined })),
            // The fallback failing is reported as the *primary* failure:
            // that is the file the operator configured and must inspect.
            Err(_) => Err(primary_err),
        }
    }
}

/// Which generation [`Checkpoint::load_with_recovery`] restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveredFrom {
    /// The primary file at the configured path.
    Primary,
    /// The rotated `<path>.prev` generation; `quarantined` names the
    /// `<path>.corrupt` file holding the unreadable primary, when there
    /// was one to preserve.
    Previous {
        /// Where the corrupt primary was moved, when it existed.
        quarantined: Option<PathBuf>,
    },
}

/// A non-negative integer field of `parent`, as u64.
fn count_field(parent: &Json, key: &str) -> Result<u64, CheckpointError> {
    parent
        .get(key)
        .and_then(Json::as_number)
        .filter(|v| *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53))
        .map(|v| v as u64)
        .ok_or_else(|| CheckpointError::Schema(format!("{key} must be a non-negative integer")))
}

/// An array-of-counts field of `parent`, as `Vec<u64>`.
fn count_array(parent: &Json, key: &str) -> Result<Vec<u64>, CheckpointError> {
    parent
        .get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| CheckpointError::Schema(format!("{key} must be an array")))?
        .iter()
        .map(|v| {
            v.as_number()
                .filter(|v| *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53))
                .map(|v| v as u64)
                .ok_or_else(|| {
                    CheckpointError::Schema(format!("{key} entries must be non-negative integers"))
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_core::{OutlierDetector, SearchMethod};
    use hdoutlier_data::generators::{planted_outliers, PlantedConfig};

    fn fitted(seed: u64) -> (FittedModel, hdoutlier_data::Dataset) {
        let planted = planted_outliers(&PlantedConfig {
            n_rows: 1000,
            n_dims: 6,
            n_outliers: 4,
            strong_groups: Some(2),
            seed,
            ..PlantedConfig::default()
        });
        let model = OutlierDetector::builder()
            .phi(4)
            .k(2)
            .m(6)
            .search(SearchMethod::BruteForce)
            .build()
            .fit(&planted.dataset)
            .unwrap();
        (model, planted.dataset)
    }

    #[test]
    fn checkpoint_round_trips_through_json() {
        let (model, ds) = fitted(7);
        let mut scorer = OnlineScorer::new(model).unwrap();
        scorer.set_check_every(100).unwrap();
        scorer.set_drift_alpha(0.05).unwrap();
        for i in 0..250 {
            scorer.score_record(ds.row(i)).unwrap();
        }
        let cp = Checkpoint::capture(&scorer, 3, 2);
        let text = cp.to_json().unwrap().pretty();
        let back = Checkpoint::from_json_text(&text).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.records_scored, 250);
        assert_eq!(back.skipped, 3);
        assert_eq!(back.quarantined, 2);
        assert_eq!(back.check_every, 100);
    }

    #[test]
    fn restore_resumes_identically_to_an_uninterrupted_run() {
        let (model, ds) = fitted(11);
        // Uninterrupted reference.
        let mut reference = OnlineScorer::new(model.clone()).unwrap();
        reference.set_check_every(100).unwrap();
        let mut ref_verdicts = Vec::new();
        for i in 0..600 {
            ref_verdicts.push(reference.score_record(ds.row(i)).unwrap());
        }
        // Interrupted at 300, checkpointed, resumed in a fresh scorer.
        let mut first = OnlineScorer::new(model.clone()).unwrap();
        first.set_check_every(100).unwrap();
        for i in 0..300 {
            first.score_record(ds.row(i)).unwrap();
        }
        let text = Checkpoint::capture(&first, 0, 0)
            .to_json()
            .unwrap()
            .render();
        let cp = Checkpoint::from_json_text(&text).unwrap();
        let mut resumed = OnlineScorer::new(model).unwrap();
        cp.restore(&mut resumed).unwrap();
        assert_eq!(resumed.records_scored(), 300);
        assert_eq!(resumed.check_every(), 100);
        for (i, r) in ref_verdicts.iter().enumerate().skip(300) {
            let v = resumed.score_record(ds.row(i)).unwrap();
            assert_eq!(v.index, r.index);
            assert_eq!(v.outlier, r.outlier);
            assert_eq!(v.score, r.score);
            // Drift checks fire at the same records with identical state.
            assert_eq!(v.drift.is_some(), r.drift.is_some(), "record {i}");
            if let (Some(a), Some(b)) = (&v.drift, &r.drift) {
                assert_eq!(a.statistics, b.statistics);
                assert_eq!(a.p_values, b.p_values);
                assert_eq!(a.drifted_dims, b.drifted_dims);
            }
        }
        assert_eq!(resumed.outliers_flagged(), reference.outliers_flagged());
    }

    #[test]
    fn fingerprint_differs_between_grids_and_blocks_restore() {
        let (model_a, ds) = fitted(13);
        let (model_b, _) = fitted(14);
        assert_ne!(grid_fingerprint(&model_a), grid_fingerprint(&model_b));
        // Same model → same fingerprint (stable across clones).
        assert_eq!(
            grid_fingerprint(&model_a),
            grid_fingerprint(&model_a.clone())
        );

        let mut scorer_a = OnlineScorer::new(model_a).unwrap();
        for i in 0..50 {
            scorer_a.score_record(ds.row(i)).unwrap();
        }
        let cp = Checkpoint::capture(&scorer_a, 0, 0);
        let mut scorer_b = OnlineScorer::new(model_b).unwrap();
        let err = cp.restore(&mut scorer_b).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        assert!(err.to_string().contains("fingerprint"), "{err}");
        // scorer_b is untouched by the failed restore.
        assert_eq!(scorer_b.records_scored(), 0);
    }

    #[test]
    fn schema_errors_are_reported() {
        assert!(matches!(
            Checkpoint::from_json_text("not json"),
            Err(CheckpointError::Json(_))
        ));
        assert!(matches!(
            Checkpoint::from_json_text("{}"),
            Err(CheckpointError::Schema(_))
        ));
        assert!(Checkpoint::from_json_text(r#"{"format": 99}"#).is_err());
        // Negative counts rejected.
        let bad = r#"{"format":1,"fingerprint":"00000000000000aa",
            "scorer":{"records_scored":-1,"outliers":0,"drift_alpha":0.01,
                      "check_every":512,"drift":{"records":0,"totals":[],"counts":[]}},
            "stream":{"skipped":0,"quarantined":0}}"#;
        assert!(matches!(
            Checkpoint::from_json_text(bad),
            Err(CheckpointError::Schema(_))
        ));
        // Bad alpha rejected.
        let bad = r#"{"format":1,"fingerprint":"00000000000000aa",
            "scorer":{"records_scored":0,"outliers":0,"drift_alpha":7,
                      "check_every":512,"drift":{"records":0,"totals":[],"counts":[]}},
            "stream":{"skipped":0,"quarantined":0}}"#;
        assert!(matches!(
            Checkpoint::from_json_text(bad),
            Err(CheckpointError::Schema(_))
        ));
    }

    #[test]
    fn save_atomic_leaves_no_staging_file() {
        let (model, ds) = fitted(17);
        let mut scorer = OnlineScorer::new(model).unwrap();
        for i in 0..10 {
            scorer.score_record(ds.row(i)).unwrap();
        }
        let dir = std::env::temp_dir().join("hdoutlier-stream-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.ckpt.json");
        let cp = Checkpoint::capture(&scorer, 0, 0);
        cp.save_atomic(&path).unwrap();
        assert!(!staging_path(&path).exists());
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        // Unwritable destination directory surfaces as Io.
        let err = cp
            .save_atomic(Path::new("/nonexistent-dir/x.json"))
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }
}
