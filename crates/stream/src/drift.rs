//! Grid-staleness detection.
//!
//! The trained grid is equi-depth by construction: on the training
//! distribution, each of the φ ranges of every dimension captures `1/φ` of
//! the records. If the live stream still follows that distribution, arriving
//! records spread uniformly over the ranges; if the distribution has moved,
//! some ranges fill disproportionately. [`DriftMonitor`] accumulates
//! per-dimension range occupancy and runs a χ² goodness-of-fit test against
//! the uniform expectation (`df = φ − 1`, p-value via the regularized
//! incomplete gamma function from `hdoutlier_stats`). A small p-value on
//! any dimension means the boundaries have gone stale and the model should
//! be re-fit — exactly the signal the online scorer surfaces.

use hdoutlier_data::dataset::DataError;
use hdoutlier_data::discretize::MISSING_CELL;
use hdoutlier_stats::gamma::gamma_q;

/// Accumulates per-dimension range occupancy of arriving records and tests
/// it against the equi-depth (uniform) expectation of the trained grid.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    phi: u32,
    /// Occupancy per `(dim, range)`, flattened `dim * phi + range`.
    counts: Vec<u64>,
    /// Non-missing observations per dimension.
    totals: Vec<u64>,
    n_dims: usize,
    records: u64,
}

/// The outcome of a χ² drift check across all dimensions.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// χ² statistic per dimension (`NAN` where too little data).
    pub statistics: Vec<f64>,
    /// Upper-tail p-value per dimension (`1.0` where too little data).
    pub p_values: Vec<f64>,
    /// Dimensions whose p-value fell below the significance level.
    pub drifted_dims: Vec<usize>,
    /// The significance level the report was produced at.
    pub alpha: f64,
}

impl DriftReport {
    /// Whether any dimension drifted at the report's significance level.
    pub fn any_drift(&self) -> bool {
        !self.drifted_dims.is_empty()
    }
}

impl DriftMonitor {
    /// Expected observations per range before a dimension is tested; below
    /// this the χ² approximation is unreliable and the dimension reports
    /// `p = 1.0` (the classic "expected cell count ≥ 5" rule).
    pub const MIN_EXPECTED_PER_RANGE: f64 = 5.0;

    /// Creates a monitor for `n_dims` dimensions over a `phi`-range grid.
    ///
    /// # Errors
    /// [`DataError::Empty`] for zero dimensions; [`DataError::Parse`] for a
    /// `phi` outside `2..u16::MAX` (with a single range there is nothing to
    /// test: `df = 0`).
    pub fn new(n_dims: usize, phi: u32) -> Result<Self, DataError> {
        if n_dims == 0 {
            return Err(DataError::Empty);
        }
        if phi < 2 || phi >= u16::MAX as u32 {
            return Err(DataError::Parse(format!(
                "phi must be in 2..{} for a drift test, got {phi}",
                u16::MAX
            )));
        }
        Ok(Self {
            phi,
            counts: vec![0; n_dims * phi as usize],
            totals: vec![0; n_dims],
            n_dims,
            records: 0,
        })
    }

    /// Ranges per dimension.
    pub fn phi(&self) -> u32 {
        self.phi
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    /// Records observed since construction or the last [`DriftMonitor::reset`].
    pub fn records_observed(&self) -> u64 {
        self.records
    }

    /// Folds in one record already discretized under the *trained* grid
    /// (cells `< phi` or [`MISSING_CELL`], which is skipped per dimension).
    ///
    /// # Errors
    /// [`DataError::ShapeMismatch`] on a record of the wrong width;
    /// [`DataError::Parse`] on an out-of-range cell.
    pub fn observe_cells(&mut self, cells: &[u16]) -> Result<(), DataError> {
        if cells.len() != self.n_dims {
            return Err(DataError::ShapeMismatch {
                expected: self.n_dims,
                actual: cells.len(),
            });
        }
        for (dim, &c) in cells.iter().enumerate() {
            if c == MISSING_CELL {
                continue;
            }
            if c as u32 >= self.phi {
                return Err(DataError::Parse(format!(
                    "dimension {dim}: cell {c} out of range for phi {}",
                    self.phi
                )));
            }
            self.counts[dim * self.phi as usize + c as usize] += 1;
            self.totals[dim] += 1;
        }
        self.records += 1;
        Ok(())
    }

    /// Raw range occupancy, flattened `dim * phi + range` — the state a
    /// [`crate::checkpoint::Checkpoint`] persists.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Non-missing observations per dimension (checkpoint state).
    pub fn totals(&self) -> &[u64] {
        &self.totals
    }

    /// Replaces the accumulated occupancy wholesale — the resume half of a
    /// checkpoint round trip.
    ///
    /// # Errors
    /// [`DataError::ShapeMismatch`] when the vectors do not match this
    /// monitor's `n_dims * phi` / `n_dims` layout.
    pub fn restore(
        &mut self,
        counts: Vec<u64>,
        totals: Vec<u64>,
        records: u64,
    ) -> Result<(), DataError> {
        if counts.len() != self.counts.len() {
            return Err(DataError::ShapeMismatch {
                expected: self.counts.len(),
                actual: counts.len(),
            });
        }
        if totals.len() != self.totals.len() {
            return Err(DataError::ShapeMismatch {
                expected: self.totals.len(),
                actual: totals.len(),
            });
        }
        self.counts = counts;
        self.totals = totals;
        self.records = records;
        Ok(())
    }

    /// Clears all accumulated occupancy — call after re-fitting the model.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.totals.iter_mut().for_each(|t| *t = 0);
        self.records = 0;
    }

    /// χ² statistic and p-value of one dimension against the uniform
    /// equi-depth expectation, or `None` while the dimension has fewer than
    /// `φ ·` [`DriftMonitor::MIN_EXPECTED_PER_RANGE`] observations.
    pub fn check_dim(&self, dim: usize) -> Option<(f64, f64)> {
        let total = self.totals[dim] as f64;
        let phi = self.phi as f64;
        let expected = total / phi;
        if expected < Self::MIN_EXPECTED_PER_RANGE {
            return None;
        }
        let base = dim * self.phi as usize;
        let stat: f64 = self.counts[base..base + self.phi as usize]
            .iter()
            .map(|&obs| {
                let d = obs as f64 - expected;
                d * d / expected
            })
            .sum();
        let df = phi - 1.0;
        Some((stat, gamma_q(df / 2.0, stat / 2.0)))
    }

    /// Tests every dimension at significance level `alpha`.
    pub fn report(&self, alpha: f64) -> DriftReport {
        let mut statistics = Vec::with_capacity(self.n_dims);
        let mut p_values = Vec::with_capacity(self.n_dims);
        let mut drifted_dims = Vec::new();
        for dim in 0..self.n_dims {
            match self.check_dim(dim) {
                Some((stat, p)) => {
                    statistics.push(stat);
                    p_values.push(p);
                    if p < alpha {
                        drifted_dims.push(dim);
                    }
                }
                None => {
                    statistics.push(f64::NAN);
                    p_values.push(1.0);
                }
            }
        }
        DriftReport {
            statistics,
            p_values,
            drifted_dims,
            alpha,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stream_does_not_drift() {
        let mut mon = DriftMonitor::new(2, 4).unwrap();
        for i in 0..4_000u16 {
            mon.observe_cells(&[i % 4, (i / 4) % 4]).unwrap();
        }
        let report = mon.report(0.01);
        assert!(!report.any_drift(), "{report:?}");
        assert!(report.p_values.iter().all(|&p| p > 0.5), "{report:?}");
    }

    #[test]
    fn shifted_stream_drifts_on_the_shifted_dimension_only() {
        let mut mon = DriftMonitor::new(2, 4).unwrap();
        for i in 0..4_000u16 {
            // Dim 0 collapses onto range 0 (hard drift); dim 1 stays uniform.
            mon.observe_cells(&[0, i % 4]).unwrap();
        }
        let report = mon.report(0.01);
        assert_eq!(report.drifted_dims, vec![0], "{report:?}");
        assert!(report.p_values[0] < 1e-6);
        assert!(report.p_values[1] > 0.5);
        assert!(report.any_drift());
    }

    #[test]
    fn too_little_data_reports_no_drift() {
        let mut mon = DriftMonitor::new(1, 4).unwrap();
        for _ in 0..10 {
            mon.observe_cells(&[0]).unwrap(); // wildly skewed but tiny n
        }
        assert!(mon.check_dim(0).is_none());
        let report = mon.report(0.05);
        assert!(!report.any_drift());
        assert!(report.statistics[0].is_nan());
        assert_eq!(report.p_values[0], 1.0);
    }

    #[test]
    fn missing_cells_are_skipped() {
        let mut mon = DriftMonitor::new(2, 4).unwrap();
        for i in 0..100u16 {
            mon.observe_cells(&[MISSING_CELL, i % 4]).unwrap();
        }
        assert_eq!(mon.records_observed(), 100);
        assert!(mon.check_dim(0).is_none()); // dim 0 saw nothing
        assert!(mon.check_dim(1).is_some());
    }

    #[test]
    fn reset_clears_state() {
        let mut mon = DriftMonitor::new(1, 4).unwrap();
        for _ in 0..1_000 {
            mon.observe_cells(&[0]).unwrap();
        }
        assert!(mon.report(0.05).any_drift());
        mon.reset();
        assert_eq!(mon.records_observed(), 0);
        assert!(!mon.report(0.05).any_drift());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(DriftMonitor::new(0, 4).is_err());
        assert!(DriftMonitor::new(2, 1).is_err());
        let mut mon = DriftMonitor::new(2, 4).unwrap();
        assert!(mon.observe_cells(&[0]).is_err());
        assert!(mon.observe_cells(&[0, 4]).is_err());
        assert!(mon.observe_cells(&[0, 3]).is_ok());
    }
}
