#![warn(missing_docs)]

//! Streaming layer over the batch detector: score records as they arrive
//! instead of re-running the whole pipeline per batch.
//!
//! The paper's pipeline — equi-depth grid, sparsity coefficient `S(D)`,
//! projection search — is batch-only. A deployment serving continuous
//! traffic needs three incremental substitutes, which this crate provides:
//!
//! - [`GkSketch`] / [`StreamingDiscretizer`]: per-dimension
//!   Greenwald–Khanna quantile sketches that maintain the φ equi-depth
//!   range boundaries under inserts, exposing the same cell mapping as
//!   `hdoutlier_data::discretize` (via [`hdoutlier_data::GridSpec`]);
//! - [`WindowCounter`]: a sliding-window [`hdoutlier_index::CubeCounter`]
//!   over a ring buffer of discretized rows, with O(d) insert/evict, so the
//!   brute-force and evolutionary searches run unchanged against the most
//!   recent records;
//! - [`OnlineScorer`] + [`DriftMonitor`]: a trained
//!   [`hdoutlier_core::FittedModel`] applied record-by-record, with a
//!   per-dimension occupancy χ² test against the trained grid that signals
//!   when the boundaries have gone stale and a re-fit is warranted;
//! - [`Checkpoint`]: atomic (temp-file + rename) JSON persistence of the
//!   scorer's state — record index, drift occupancy, outlier/skip totals —
//!   guarded by a grid fingerprint, so a crashed or redeployed scorer
//!   resumes where it left off instead of silently resetting drift
//!   statistics.

//!
//! Two deployment-surface companions also live here so the CLI `stream`
//! subcommand and the `hdoutlier serve` network server share one
//! implementation: [`model_io`] (JSON persistence of fitted models) and
//! [`ndjson`] (the NDJSON verdict wire format — the serve path's
//! byte-identical-to-`stream` guarantee rests on both transports calling
//! the same renderer).

pub mod checkpoint;
pub mod drift;
pub mod model_io;
pub mod ndjson;
pub mod scorer;
pub mod sketch;
pub mod window;

pub use checkpoint::{Checkpoint, CheckpointError, RecoveredFrom};
pub use drift::{DriftMonitor, DriftReport};
pub use model_io::ModelIoError;
pub use scorer::{OnlineScorer, Verdict};
pub use sketch::{GkSketch, StreamingDiscretizer};
pub use window::WindowCounter;
