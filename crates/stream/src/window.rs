//! Sliding-window cube counting.
//!
//! The batch index ([`hdoutlier_index::BitmapCounter`]) is built once over a
//! frozen dataset. A stream needs the same query surface — "how many of the
//! current records fall in this cube?" — over the most recent `W` records,
//! with old records aging out. [`WindowCounter`] keeps a ring buffer of
//! discretized rows plus one posting bitmap per `(dimension, range)` cell,
//! indexed by ring slot, so insert and evict each touch exactly `d` bitmaps
//! (O(1) amortized per dimension) and counting stays the same
//! intersect-and-popcount the batch index uses.
//!
//! It implements [`CubeCounter`], so the brute-force search, fitness
//! function, and evolutionary engine run unchanged against a live window.

use hdoutlier_data::dataset::DataError;
use hdoutlier_data::discretize::MISSING_CELL;
use hdoutlier_index::{Bitmap, Cube, CubeCounter};
use hdoutlier_obs as obs;
use std::collections::VecDeque;

/// A fixed-capacity sliding window of discretized records, queryable as a
/// [`CubeCounter`].
///
/// Row indices reported by [`CubeCounter::rows`] are window-relative ages:
/// `0` is the oldest record still in the window, `len − 1` the newest.
#[derive(Debug, Clone)]
pub struct WindowCounter {
    capacity: usize,
    n_dims: usize,
    phi: u32,
    /// One bitmap per `(dim, range)` cell, indexed `dim * phi + range`;
    /// bit positions are ring slots, not ages.
    postings: Vec<Bitmap>,
    /// Cells of the record in each ring slot (`None` while unoccupied).
    slots: Vec<Option<Vec<u16>>>,
    /// Ring slots in age order, oldest first.
    order: VecDeque<usize>,
    /// Total records ever pushed (for monitoring; not the window length).
    total_pushed: u64,
    /// `hdoutlier.stream.window_len` occupancy gauge, shared by name across
    /// windows in the process (last writer wins).
    occupancy: obs::Gauge,
}

impl WindowCounter {
    /// Creates an empty window holding at most `capacity` records of
    /// `n_dims` cells each, over a `phi`-range grid.
    ///
    /// # Errors
    /// [`DataError::Empty`] for a zero capacity or zero dimensions;
    /// [`DataError::Parse`] for a `phi` outside `1..u16::MAX`.
    pub fn new(capacity: usize, n_dims: usize, phi: u32) -> Result<Self, DataError> {
        if capacity == 0 || n_dims == 0 {
            return Err(DataError::Empty);
        }
        if phi == 0 || phi >= u16::MAX as u32 {
            return Err(DataError::Parse(format!(
                "phi must be in 1..{}, got {phi}",
                u16::MAX
            )));
        }
        Ok(Self {
            capacity,
            n_dims,
            phi,
            postings: vec![Bitmap::new(capacity); n_dims * phi as usize],
            slots: vec![None; capacity],
            order: VecDeque::with_capacity(capacity),
            total_pushed: 0,
            occupancy: obs::registry().gauge("hdoutlier.stream.window_len"),
        })
    }

    /// Window capacity `W`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently held (`≤ capacity`).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the window holds no records.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Whether the window has reached capacity (every further push evicts).
    pub fn is_full(&self) -> bool {
        self.order.len() == self.capacity
    }

    /// Total records pushed over the window's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// The discretized record at window-relative age `idx` (0 = oldest).
    pub fn record(&self, idx: usize) -> Option<&[u16]> {
        let slot = *self.order.get(idx)?;
        self.slots[slot].as_deref()
    }

    #[inline]
    fn posting_index(&self, dim: usize, range: u16) -> usize {
        dim * self.phi as usize + range as usize
    }

    /// Pushes one discretized record, evicting (and returning) the oldest
    /// when full. Cells must be `< phi` or [`MISSING_CELL`].
    ///
    /// Both the evict and the insert touch exactly `n_dims` bitmap bits.
    ///
    /// # Errors
    /// [`DataError::ShapeMismatch`] on a record of the wrong width;
    /// [`DataError::Parse`] on an out-of-range cell.
    pub fn push(&mut self, cells: &[u16]) -> Result<Option<Vec<u16>>, DataError> {
        if cells.len() != self.n_dims {
            return Err(DataError::ShapeMismatch {
                expected: self.n_dims,
                actual: cells.len(),
            });
        }
        for (dim, &c) in cells.iter().enumerate() {
            if c != MISSING_CELL && c as u32 >= self.phi {
                return Err(DataError::Parse(format!(
                    "dimension {dim}: cell {c} out of range for phi {}",
                    self.phi
                )));
            }
        }
        let (slot, evicted) = if self.order.len() == self.capacity {
            let slot = self.order.pop_front().expect("full window");
            let old = self.slots[slot].take().expect("occupied slot");
            for (dim, &c) in old.iter().enumerate() {
                if c != MISSING_CELL {
                    let idx = self.posting_index(dim, c);
                    self.postings[idx].clear(slot);
                }
            }
            (slot, Some(old))
        } else {
            (self.order.len(), None)
        };
        for (dim, &c) in cells.iter().enumerate() {
            if c != MISSING_CELL {
                let idx = self.posting_index(dim, c);
                self.postings[idx].set(slot);
            }
        }
        self.slots[slot] = Some(cells.to_vec());
        self.order.push_back(slot);
        self.total_pushed += 1;
        self.occupancy.set(self.order.len() as i64);
        Ok(evicted)
    }

    /// The posting bitmaps for a cube, or `None` if the cube references a
    /// dimension or range outside this grid (which covers zero records).
    fn cube_postings(&self, cube: &Cube) -> Option<Vec<&Bitmap>> {
        cube.pairs()
            .map(|(d, r)| {
                if (d as usize) < self.n_dims && (r as u32) < self.phi {
                    Some(&self.postings[self.posting_index(d as usize, r)])
                } else {
                    None
                }
            })
            .collect()
    }
}

impl CubeCounter for WindowCounter {
    fn count(&self, cube: &Cube) -> usize {
        match self.cube_postings(cube) {
            Some(maps) => Bitmap::intersection_count(&maps),
            None => 0,
        }
    }

    fn rows(&self, cube: &Cube) -> Vec<usize> {
        let Some(maps) = self.cube_postings(cube) else {
            return Vec::new();
        };
        let hit = Bitmap::intersection(&maps);
        // Translate matching ring slots back to age order; enumerating
        // `order` yields ages ascending already.
        self.order
            .iter()
            .enumerate()
            .filter(|&(_, &slot)| hit.get(slot))
            .map(|(age, _)| age)
            .collect()
    }

    fn n_rows(&self) -> usize {
        self.order.len()
    }

    fn n_dims(&self) -> usize {
        self.n_dims
    }

    fn phi(&self) -> u32 {
        self.phi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
    use hdoutlier_data::generators::uniform;
    use hdoutlier_index::NaiveCounter;

    fn all_two_dim_cubes(n_dims: u32, phi: u16) -> Vec<Cube> {
        let mut cubes = Vec::new();
        for d0 in 0..n_dims {
            for r0 in 0..phi {
                cubes.push(Cube::new([(d0, r0)]).unwrap());
                for d1 in (d0 + 1)..n_dims {
                    for r1 in 0..phi {
                        cubes.push(Cube::new([(d0, r0), (d1, r1)]).unwrap());
                    }
                }
            }
        }
        cubes
    }

    #[test]
    fn matches_naive_counter_on_identical_contents() {
        // Window = the whole dataset → must agree with the batch oracle on
        // every 1- and 2-dimensional cube.
        let ds = uniform(300, 5, 42);
        let disc = Discretized::new(&ds, 4, DiscretizeStrategy::EquiDepth).unwrap();
        let naive = NaiveCounter::new(&disc);
        let mut window = WindowCounter::new(300, 5, 4).unwrap();
        for row in 0..disc.n_rows() {
            window.push(disc.row(row)).unwrap();
        }
        assert_eq!(window.n_rows(), naive.n_rows());
        for cube in all_two_dim_cubes(5, 4) {
            assert_eq!(window.count(&cube), naive.count(&cube), "cube {cube}");
            assert_eq!(window.rows(&cube), naive.rows(&cube), "cube {cube}");
        }
    }

    #[test]
    fn eviction_matches_fresh_window_over_suffix() {
        // Push 2W rows through a W-window; it must equal a fresh window
        // holding only the last W rows.
        let ds = uniform(400, 4, 7);
        let disc = Discretized::new(&ds, 5, DiscretizeStrategy::EquiDepth).unwrap();
        let w = 150;
        let mut rolling = WindowCounter::new(w, 4, 5).unwrap();
        let mut evictions = 0;
        for row in 0..disc.n_rows() {
            if rolling.push(disc.row(row)).unwrap().is_some() {
                evictions += 1;
            }
        }
        assert_eq!(evictions, disc.n_rows() - w);
        assert_eq!(rolling.total_pushed(), disc.n_rows() as u64);
        let mut fresh = WindowCounter::new(w, 4, 5).unwrap();
        for row in disc.n_rows() - w..disc.n_rows() {
            fresh.push(disc.row(row)).unwrap();
        }
        for cube in all_two_dim_cubes(4, 5) {
            assert_eq!(rolling.count(&cube), fresh.count(&cube), "cube {cube}");
            assert_eq!(rolling.rows(&cube), fresh.rows(&cube), "cube {cube}");
        }
        for idx in 0..w {
            assert_eq!(rolling.record(idx), fresh.record(idx));
        }
    }

    #[test]
    fn missing_cells_never_match() {
        let mut window = WindowCounter::new(4, 2, 3).unwrap();
        window.push(&[MISSING_CELL, 1]).unwrap();
        window.push(&[0, MISSING_CELL]).unwrap();
        let d0 = Cube::new([(0, 0)]).unwrap();
        assert_eq!(window.count(&d0), 1);
        assert_eq!(window.rows(&d0), vec![1]);
        let both = Cube::new([(0, 0), (1, 1)]).unwrap();
        assert_eq!(window.count(&both), 0);
    }

    #[test]
    fn out_of_grid_cubes_count_zero() {
        let mut window = WindowCounter::new(4, 2, 3).unwrap();
        window.push(&[0, 1]).unwrap();
        assert_eq!(window.count(&Cube::new([(5, 0)]).unwrap()), 0);
        assert_eq!(window.count(&Cube::new([(0, 9)]).unwrap()), 0);
        assert!(window.rows(&Cube::new([(5, 0)]).unwrap()).is_empty());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(WindowCounter::new(0, 2, 3).is_err());
        assert!(WindowCounter::new(4, 0, 3).is_err());
        assert!(WindowCounter::new(4, 2, 0).is_err());
        let mut window = WindowCounter::new(4, 2, 3).unwrap();
        assert!(window.push(&[0]).is_err());
        assert!(window.push(&[0, 3]).is_err()); // cell == phi
        assert!(window.push(&[0, 2]).is_ok());
    }

    #[test]
    fn fill_state_and_eviction_order() {
        let mut window = WindowCounter::new(2, 1, 4).unwrap();
        assert!(window.is_empty());
        assert_eq!(window.push(&[0]).unwrap(), None);
        assert_eq!(window.push(&[1]).unwrap(), None);
        assert!(window.is_full());
        // FIFO: oldest out first.
        assert_eq!(window.push(&[2]).unwrap(), Some(vec![0]));
        assert_eq!(window.push(&[3]).unwrap(), Some(vec![1]));
        assert_eq!(window.record(0), Some(&[2u16][..]));
        assert_eq!(window.record(1), Some(&[3u16][..]));
        assert_eq!(window.record(2), None);
        assert_eq!(window.len(), 2);
    }
}
