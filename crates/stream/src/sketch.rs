//! Streaming quantiles and the online equi-depth grid.
//!
//! The batch pipeline gets its φ equi-depth ranges by sorting each column
//! (`hdoutlier_data::discretize`). A stream cannot sort; instead each
//! dimension keeps a Greenwald–Khanna sketch — an ordered summary of
//! `(value, g, Δ)` tuples maintaining every rank to within `ε·n` — and the
//! range boundaries are read off as the `1/φ, 2/φ, …` quantiles on demand.
//!
//! Greenwald & Khanna, "Space-Efficient Online Computation of Quantile
//! Summaries" (SIGMOD 2001 — the same conference issue as the source
//! paper). Space is `O((1/ε)·log(εn))`; inserts are logarithmic search plus
//! a periodic compress.

use hdoutlier_data::dataset::DataError;
use hdoutlier_data::discretize::MISSING_CELL;
use hdoutlier_data::GridSpec;

/// One summary tuple: `g` is the rank gap to the previous tuple, `delta`
/// the extra rank uncertainty of this one.
#[derive(Debug, Clone, Copy)]
struct Tuple {
    v: f64,
    g: u64,
    delta: u64,
}

/// A Greenwald–Khanna ε-approximate quantile sketch over one dimension.
///
/// Any quantile query is answered with a value whose true rank is within
/// `ε·n` of the requested rank. NaNs are ignored (they are the missing-value
/// encoding upstream).
#[derive(Debug, Clone)]
pub struct GkSketch {
    eps: f64,
    n: u64,
    tuples: Vec<Tuple>,
    inserts_since_compress: u64,
}

impl GkSketch {
    /// Creates a sketch with rank error `eps` (must be in `(0, 0.5)`).
    ///
    /// # Panics
    /// Panics if `eps` is out of range.
    pub fn new(eps: f64) -> Self {
        assert!(
            eps > 0.0 && eps < 0.5 && eps.is_finite(),
            "eps must be in (0, 0.5), got {eps}"
        );
        Self {
            eps,
            n: 0,
            tuples: Vec::new(),
            inserts_since_compress: 0,
        }
    }

    /// Number of (non-NaN) values observed.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether no values have been observed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The configured rank error.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of summary tuples currently held (the space cost).
    pub fn summary_size(&self) -> usize {
        self.tuples.len()
    }

    /// Observes one value; NaN is ignored.
    pub fn insert(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        // First tuple past v; inserting there keeps the summary sorted.
        let pos = self.tuples.partition_point(|t| t.v < v);
        let cap = (2.0 * self.eps * self.n as f64).floor() as u64;
        let delta = if pos == 0 || pos == self.tuples.len() {
            0 // a new minimum or maximum has exact rank
        } else {
            cap.saturating_sub(1)
        };
        self.tuples.insert(pos, Tuple { v, g: 1, delta });
        self.n += 1;
        self.inserts_since_compress += 1;
        if self.inserts_since_compress as f64 >= 1.0 / (2.0 * self.eps) {
            self.compress();
            self.inserts_since_compress = 0;
        }
    }

    /// Merges adjacent tuples whose combined uncertainty stays within the
    /// `2εn` capacity, bounding the summary size.
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let cap = (2.0 * self.eps * self.n as f64).floor() as u64;
        // Sweep from the tail; never touch the first or last tuple (they
        // pin the observed min and max at exact rank).
        let mut i = self.tuples.len() - 2;
        while i >= 1 {
            let merged = self.tuples[i].g + self.tuples[i + 1].g + self.tuples[i + 1].delta;
            if merged <= cap {
                self.tuples[i + 1].g += self.tuples[i].g;
                self.tuples.remove(i);
            }
            i -= 1;
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`): a value whose rank is within
    /// `ε·n` of `q·n`. `None` on an empty sketch.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.n as f64).ceil() as u64).max(1);
        let e = (self.eps * self.n as f64).floor() as u64;
        let mut r_min = 0u64;
        for (i, t) in self.tuples.iter().enumerate() {
            r_min += t.g;
            let r_max = r_min + t.delta;
            if r_max > rank + e {
                // This tuple may already overshoot; the previous one is
                // guaranteed within ε·n by the summary invariant.
                let j = i.saturating_sub(1);
                return Some(self.tuples[j].v);
            }
        }
        self.tuples.last().map(|t| t.v)
    }
}

/// Online equi-depth discretization: one [`GkSketch`] per dimension,
/// exposing the φ range boundaries — and therefore the same cell mapping —
/// that `hdoutlier_data::discretize` derives by sorting.
#[derive(Debug, Clone)]
pub struct StreamingDiscretizer {
    phi: u32,
    sketches: Vec<GkSketch>,
    names: Vec<String>,
    rows_observed: u64,
}

impl StreamingDiscretizer {
    /// Creates a discretizer for `n_dims` attributes with `phi` ranges per
    /// dimension and per-dimension sketch error `eps`.
    ///
    /// # Errors
    /// [`DataError::Empty`] for zero dimensions; [`DataError::Parse`] for a
    /// `phi` outside `1..u16::MAX` (the same bound the batch discretizer
    /// enforces) or a non-finite/out-of-range `eps`.
    pub fn new(n_dims: usize, phi: u32, eps: f64) -> Result<Self, DataError> {
        if n_dims == 0 {
            return Err(DataError::Empty);
        }
        if phi == 0 || phi >= u16::MAX as u32 {
            return Err(DataError::Parse(format!(
                "phi must be in 1..{}, got {phi}",
                u16::MAX
            )));
        }
        if !(eps > 0.0 && eps < 0.5 && eps.is_finite()) {
            return Err(DataError::Parse(format!(
                "sketch eps must be in (0, 0.5), got {eps}"
            )));
        }
        Ok(Self {
            phi,
            sketches: (0..n_dims).map(|_| GkSketch::new(eps)).collect(),
            names: (0..n_dims).map(|d| format!("x{d}")).collect(),
            rows_observed: 0,
        })
    }

    /// Replaces the column names carried into [`StreamingDiscretizer::grid_spec`].
    ///
    /// # Errors
    /// [`DataError::NameCountMismatch`] when the count is wrong.
    pub fn set_names<S: Into<String>>(&mut self, names: Vec<S>) -> Result<(), DataError> {
        if names.len() != self.sketches.len() {
            return Err(DataError::NameCountMismatch {
                n_dims: self.sketches.len(),
                n_names: names.len(),
            });
        }
        self.names = names.into_iter().map(Into::into).collect();
        Ok(())
    }

    /// Ranges per dimension.
    pub fn phi(&self) -> u32 {
        self.phi
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.sketches.len()
    }

    /// Rows observed so far.
    pub fn rows_observed(&self) -> u64 {
        self.rows_observed
    }

    /// The sketch of one dimension.
    pub fn sketch(&self, dim: usize) -> &GkSketch {
        &self.sketches[dim]
    }

    /// Folds one record into the per-dimension sketches; NaNs (missing
    /// values) are skipped per dimension like the batch discretizer.
    ///
    /// # Errors
    /// [`DataError::ShapeMismatch`] on a record of the wrong width.
    pub fn observe(&mut self, row: &[f64]) -> Result<(), DataError> {
        if row.len() != self.sketches.len() {
            return Err(DataError::ShapeMismatch {
                expected: self.sketches.len(),
                actual: row.len(),
            });
        }
        for (sketch, &v) in self.sketches.iter_mut().zip(row) {
            sketch.insert(v);
        }
        self.rows_observed += 1;
        Ok(())
    }

    /// The φ−1 ascending upper boundaries of `dim`, read from the sketch at
    /// the `c/φ` quantiles. `None` until the dimension has seen data.
    pub fn boundaries(&self, dim: usize) -> Option<Vec<f64>> {
        let sketch = &self.sketches[dim];
        if sketch.is_empty() {
            return None;
        }
        let mut uppers = Vec::with_capacity(self.phi as usize - 1);
        let mut last = f64::NEG_INFINITY;
        for c in 1..self.phi {
            let q = c as f64 / self.phi as f64;
            let b = sketch.quantile(q).expect("non-empty sketch");
            // Sketch quantiles are monotone, but enforce it so GridSpec
            // validation can never fail on floating noise.
            let b = b.max(last);
            uppers.push(b);
            last = b;
        }
        Some(uppers)
    }

    /// Snapshots the current boundaries as a [`GridSpec`] — the exact type
    /// the batch pipeline fits, so everything downstream (model scoring,
    /// window counting) is shared.
    ///
    /// A dimension that has seen no data yet (all missing) gets all-equal
    /// boundaries at 0, matching the batch behavior of an all-missing
    /// column (everything assigns to range 0).
    ///
    /// # Errors
    /// [`DataError::Empty`] before any record has been observed.
    pub fn grid_spec(&self) -> Result<GridSpec, DataError> {
        if self.rows_observed == 0 {
            return Err(DataError::Empty);
        }
        let uppers: Vec<Vec<f64>> = (0..self.n_dims())
            .map(|dim| {
                self.boundaries(dim)
                    .unwrap_or_else(|| vec![0.0; self.phi as usize - 1])
            })
            .collect();
        GridSpec::from_parts(uppers, self.phi, self.names.clone())
    }

    /// Cell of a single value on `dim` under the current boundaries, with
    /// the same mapping rule as [`GridSpec::cell_of`] (NaN →
    /// [`MISSING_CELL`], boundary ties land low).
    pub fn cell_of(&self, dim: usize, value: f64) -> u16 {
        if value.is_nan() {
            return MISSING_CELL;
        }
        match self.boundaries(dim) {
            // Mirror the all-zero boundaries grid_spec() emits for a
            // dimension with no data, so the two mappings always agree.
            None => {
                if value > 0.0 {
                    (self.phi - 1) as u16
                } else {
                    0
                }
            }
            Some(uppers) => uppers.partition_point(|&b| b < value) as u16,
        }
    }

    /// Cells of one record under the current boundaries.
    ///
    /// # Errors
    /// [`DataError::ShapeMismatch`] on a record of the wrong width.
    pub fn assign_row(&self, row: &[f64]) -> Result<Vec<u16>, DataError> {
        if row.len() != self.n_dims() {
            return Err(DataError::ShapeMismatch {
                expected: self.n_dims(),
                actual: row.len(),
            });
        }
        Ok(row
            .iter()
            .enumerate()
            .map(|(dim, &v)| self.cell_of(dim, v))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact rank interval of `v` in `sorted`: positions (1-based) where v
    /// could sit. Values tie-aware so heavy-tie streams test fairly.
    fn rank_interval(sorted: &[f64], v: f64) -> (u64, u64) {
        let lo = sorted.partition_point(|&x| x < v) as u64 + 1;
        let hi = sorted.partition_point(|&x| x <= v) as u64;
        (lo, hi.max(lo))
    }

    fn assert_quantiles_within_eps(values: &[f64], eps: f64) {
        let mut sketch = GkSketch::new(eps);
        for &v in values {
            sketch.insert(v);
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len() as f64;
        for i in 1..20 {
            let q = i as f64 / 20.0;
            let est = sketch.quantile(q).unwrap();
            let target = (q * n).ceil().max(1.0);
            let (lo, hi) = rank_interval(&sorted, est);
            let err = if target < lo as f64 {
                lo as f64 - target
            } else if target > hi as f64 {
                target - hi as f64
            } else {
                0.0
            };
            assert!(
                err <= (eps * n).floor() + 1.0,
                "q={q}: est {est} rank [{lo},{hi}] target {target} err {err}"
            );
        }
    }

    fn pseudo_random(n: usize) -> Vec<f64> {
        // LCG-style mixing keeps the test free of the rng dev-dependency
        // ordering concerns; spread is uniform enough for rank tests.
        (0..n)
            .map(|i| ((i as u64).wrapping_mul(2654435761) % 100_000) as f64 / 100_000.0)
            .collect()
    }

    #[test]
    fn random_stream_meets_error_bound() {
        assert_quantiles_within_eps(&pseudo_random(50_000), 0.01);
    }

    #[test]
    fn sorted_and_reversed_streams_meet_error_bound() {
        let asc: Vec<f64> = (0..20_000).map(|i| i as f64).collect();
        assert_quantiles_within_eps(&asc, 0.01);
        let desc: Vec<f64> = (0..20_000).rev().map(|i| i as f64).collect();
        assert_quantiles_within_eps(&desc, 0.01);
    }

    #[test]
    fn heavy_ties_meet_error_bound() {
        // 90% one value — the discretizer's nastiest real-world input.
        let mut vals = vec![5.0; 18_000];
        vals.extend((0..2_000).map(|i| i as f64 / 2_000.0));
        assert_quantiles_within_eps(&vals, 0.01);
    }

    #[test]
    fn summary_stays_compact() {
        let mut sketch = GkSketch::new(0.01);
        for v in pseudo_random(100_000) {
            sketch.insert(v);
        }
        // O((1/eps)·log(eps·n)) ≈ a few hundred at eps=1%.
        assert!(
            sketch.summary_size() < 2_000,
            "summary grew to {}",
            sketch.summary_size()
        );
    }

    #[test]
    fn nan_is_ignored() {
        let mut sketch = GkSketch::new(0.1);
        sketch.insert(f64::NAN);
        assert!(sketch.is_empty());
        sketch.insert(1.0);
        assert_eq!(sketch.len(), 1);
        assert_eq!(sketch.quantile(0.5), Some(1.0));
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        assert_eq!(GkSketch::new(0.1).quantile(0.5), None);
    }

    #[test]
    fn discretizer_validates_parameters() {
        assert!(StreamingDiscretizer::new(0, 5, 0.01).is_err());
        assert!(StreamingDiscretizer::new(3, 0, 0.01).is_err());
        assert!(StreamingDiscretizer::new(3, u16::MAX as u32, 0.01).is_err());
        assert!(StreamingDiscretizer::new(3, 5, 0.0).is_err());
        assert!(StreamingDiscretizer::new(3, 5, 0.7).is_err());
        assert!(StreamingDiscretizer::new(3, 5, 0.01).is_ok());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut disc = StreamingDiscretizer::new(3, 5, 0.01).unwrap();
        assert!(disc.observe(&[1.0, 2.0]).is_err());
        assert!(disc.observe(&[1.0, 2.0, 3.0]).is_ok());
        assert!(disc.assign_row(&[1.0]).is_err());
    }

    #[test]
    fn cells_agree_with_grid_spec_snapshot() {
        let mut disc = StreamingDiscretizer::new(2, 4, 0.005).unwrap();
        for i in 0..5_000 {
            let v = (i as f64 * 0.6180339887) % 1.0;
            disc.observe(&[v, 1.0 - v]).unwrap();
        }
        let spec = disc.grid_spec().unwrap();
        for i in 0..100 {
            let v = i as f64 / 100.0;
            assert_eq!(disc.cell_of(0, v), spec.cell_of(0, v), "value {v}");
            assert_eq!(
                disc.assign_row(&[v, 1.0 - v]).unwrap(),
                spec.assign_row(&[v, 1.0 - v]).unwrap()
            );
        }
        assert_eq!(disc.cell_of(0, f64::NAN), MISSING_CELL);
    }

    #[test]
    fn streaming_boundaries_track_batch_quartiles() {
        // Uniform 0..1: boundaries should approach 0.25/0.5/0.75.
        let mut disc = StreamingDiscretizer::new(1, 4, 0.005).unwrap();
        for v in pseudo_random(50_000) {
            disc.observe(&[v]).unwrap();
        }
        let b = disc.boundaries(0).unwrap();
        for (got, want) in b.iter().zip([0.25, 0.5, 0.75]) {
            assert!((got - want).abs() < 0.02, "{b:?}");
        }
    }

    #[test]
    fn all_missing_dimension_is_tolerated() {
        let mut disc = StreamingDiscretizer::new(2, 3, 0.01).unwrap();
        for i in 0..100 {
            disc.observe(&[f64::NAN, i as f64]).unwrap();
        }
        assert!(disc.boundaries(0).is_none());
        let spec = disc.grid_spec().unwrap();
        // The dead dimension gets all-zero boundaries; streaming and
        // snapshot mappings must still agree on it.
        for v in [-1.0, 0.0, 42.0] {
            assert_eq!(disc.cell_of(0, v), spec.cell_of(0, v), "value {v}");
        }
        assert_eq!(spec.cell_of(0, 42.0), 2); // past both zero boundaries
        assert_eq!(spec.cell_of(0, -1.0), 0);
        assert_eq!(disc.cell_of(0, f64::NAN), MISSING_CELL);
    }

    #[test]
    fn names_flow_into_grid_spec() {
        let mut disc = StreamingDiscretizer::new(2, 3, 0.01).unwrap();
        assert!(disc.set_names(vec!["only-one"]).is_err());
        disc.set_names(vec!["a", "b"]).unwrap();
        disc.observe(&[1.0, 2.0]).unwrap();
        let spec = disc.grid_spec().unwrap();
        assert_eq!(spec.names(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn grid_spec_requires_data() {
        let disc = StreamingDiscretizer::new(2, 3, 0.01).unwrap();
        assert!(disc.grid_spec().is_err());
    }
}
